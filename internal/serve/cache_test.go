package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/bench"
)

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestCacheEndpointsRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Cache: true})

	// A cold lookup answers one found:false row per key.
	resp := postJSON(t, ts.URL+"/v1/cache/lookup", `{"keys":["k1","k2"]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lookup status %d, want 200", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	rows := 0
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var row struct {
			Key   string `json:"key"`
			Found bool   `json:"found"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("row %q: %v", sc.Text(), err)
		}
		if row.Found {
			t.Fatalf("cold lookup found %q", row.Key)
		}
		rows++
	}
	if rows != 2 {
		t.Fatalf("cold lookup returned %d rows, want 2", rows)
	}

	// A fill is acknowledged with the stored count, skipping unusable
	// entries (blank key, non-JSON value) without failing the request.
	resp = postJSON(t, ts.URL+"/v1/cache/fill",
		`{"entries":[{"key":"k1","value":{"ok":true}},{"key":"","value":{}},{"key":"k3"}]}`)
	defer resp.Body.Close()
	var ack struct {
		Stored int `json:"stored"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ack.Stored != 1 {
		t.Fatalf("fill status %d stored %d, want 200 / 1", resp.StatusCode, ack.Stored)
	}

	// The filled key now answers from the local store.
	resp = postJSON(t, ts.URL+"/v1/cache/lookup", `{"keys":["k1"]}`)
	defer resp.Body.Close()
	var row struct {
		Key   string          `json:"key"`
		Found bool            `json:"found"`
		Value json.RawMessage `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&row); err != nil {
		t.Fatal(err)
	}
	if !row.Found || !bytes.Contains(row.Value, []byte("true")) {
		t.Fatalf("warm lookup row %+v, want the filled value", row)
	}
}

func TestCacheEndpointsAbsentWithoutCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/v1/cache/lookup", "/v1/cache/fill"} {
		resp := postJSON(t, ts.URL+path, `{}`)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status %d, want 404 on a cache-less instance", path, resp.StatusCode)
		}
	}
}

func TestCacheRequestLimitsAndMethods(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Cache: true})

	keys := make([]string, maxCacheKeys+1)
	for i := range keys {
		keys[i] = fmt.Sprintf("\"k%d\"", i)
	}
	resp := postJSON(t, ts.URL+"/v1/cache/lookup", `{"keys":[`+strings.Join(keys, ",")+`]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversize lookup status %d, want 400", resp.StatusCode)
	}

	for _, path := range []string{"/v1/cache/lookup", "/v1/cache/fill"} {
		getResp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		getResp.Body.Close()
		if getResp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s status %d, want 405", path, getResp.StatusCode)
		}
	}
}

// TestFleetCacheSecondRunHits is the wire-level acceptance pin: two
// serve instances pointed at each other as cache peers; a suite run on
// one seeds the tier, so the same manifest run on the OTHER answers
// from the cache (nonzero hits in its /v1/stats) with identical rows.
func TestFleetCacheSecondRunHits(t *testing.T) {
	sA, tsA := newTestServer(t, Config{Workers: 2, Cache: true})
	// B joins with A as its cache peer; A is not re-pointed at B, which
	// also exercises the asymmetric (one-way) fleet shape.
	_, tsB := newTestServer(t, Config{Workers: 2, Cache: true, CachePeers: []string{tsA.URL}})

	manifest := `{"technologies":["cntfet32"],"jobs":[
		{"name":"bubble","workload":"bubble"},
		{"name":"gemm","workload":"gemm"}]}`

	suiteRowsOf := func(ts string) map[string]string {
		resp := postJSON(t, ts+"/v1/suite", manifest)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("suite status %d", resp.StatusCode)
		}
		rows := map[string]string{}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var jr bench.JobReport
			if err := json.Unmarshal(line, &jr); err != nil {
				t.Fatalf("row %q: %v", line, err)
			}
			if !jr.OK {
				t.Fatalf("job %s failed: %s", jr.Name, jr.Error)
			}
			// Normalize the run-local fields the cache scrubs by design.
			jr.ElapsedMS, jr.Worker = 0, 0
			norm, _ := json.Marshal(jr)
			rows[jr.Name] = string(norm)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return rows
	}

	cold := suiteRowsOf(tsA.URL)
	if len(cold) != 2 {
		t.Fatalf("cold run returned %d rows, want 2", len(cold))
	}
	// A's dispatch path stored through its tier; its local store now
	// holds both rows.
	if st := sA.cache.Stats(); st.Puts != 2 {
		t.Fatalf("instance A cache stats %+v, want 2 puts", st)
	}

	warm := suiteRowsOf(tsB.URL)
	for name, row := range cold {
		if warm[name] != row {
			t.Fatalf("job %s diverged between fleet runs:\ncold %s\nwarm %s", name, row, warm[name])
		}
	}

	// B's stats must show the cache answering: tier hits, via the peer.
	resp, err := http.Get(tsB.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Cache struct {
			Results *bench.ResultCacheReport `json:"results"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Results == nil {
		t.Fatal("stats carry no results-cache section")
	}
	if stats.Cache.Results.Hits != 2 || stats.Cache.Results.PeerHits != 2 {
		t.Fatalf("warm stats %+v, want 2 hits / 2 peer hits", stats.Cache.Results)
	}

	// And B's warm jobs rode the cache, not a worker.
	respJobs := postJSON(t, tsB.URL+"/v1/suite", manifest)
	defer respJobs.Body.Close()
	sc := bufio.NewScanner(respJobs.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var jr bench.JobReport
		if err := json.Unmarshal(line, &jr); err != nil {
			t.Fatal(err)
		}
		if jr.Worker != -1 {
			t.Fatalf("warm job %s ran on worker %d, want -1 (cache hit)", jr.Name, jr.Worker)
		}
	}
}
