package tmem

import (
	"testing"

	"repro/internal/ternary"
)

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, size := range []int{0, -1, MaxWords + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(size=%d) did not panic", size)
				}
			}()
			New("TIM", size)
		}()
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New("TDM", 64)
	w := ternary.FromInt(-1234)
	if err := m.Write(17, w); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(17)
	if err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Errorf("Read(17) = %v, want %v", got, w)
	}
}

func TestOutOfRangeFaults(t *testing.T) {
	m := New("TDM", 8)
	if _, err := m.Read(8); err == nil {
		t.Error("Read(8) on size-8 memory succeeded")
	}
	if _, err := m.Read(-1); err == nil {
		t.Error("Read(-1) succeeded")
	}
	if err := m.Write(100, ternary.Word{}); err == nil {
		t.Error("Write(100) succeeded")
	}
}

func TestWordAddressing(t *testing.T) {
	m := New("TDM", MaxWords)
	// Negative balanced addresses map to the top of the unsigned space.
	addr := ternary.FromInt(-1)
	if err := m.WriteWord(addr, ternary.FromInt(42)); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(MaxWords - 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 42 {
		t.Errorf("address -1 did not map to word %d", MaxWords-1)
	}
	back, err := m.ReadWord(addr)
	if err != nil || back.Int() != 42 {
		t.Errorf("ReadWord(-1) = %v, %v", back, err)
	}
}

func TestCellAccounting(t *testing.T) {
	m := New("TIM", 256)
	if m.Cells() != 256*9 {
		t.Errorf("Cells() = %d, want %d", m.Cells(), 256*9)
	}
	// Table V: a 256-word binary-encoded ternary memory is 4,608 bits;
	// two of them give the paper's 9,216 RAM bits.
	if m.EncodedBits() != 4608 {
		t.Errorf("EncodedBits() = %d, want 4608", m.EncodedBits())
	}
}

func TestLoadImage(t *testing.T) {
	m := New("TIM", 4)
	img := []ternary.Word{ternary.FromInt(1), ternary.FromInt(2)}
	if err := m.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	w, _ := m.Read(1)
	if w.Int() != 2 {
		t.Errorf("image word 1 = %d, want 2", w.Int())
	}
	if err := m.LoadImage(make([]ternary.Word, 5)); err == nil {
		t.Error("oversized image load succeeded")
	}
}

func TestSetAllAndReset(t *testing.T) {
	m := New("TDM", 16)
	if err := m.SetAll(map[int]ternary.Word{3: ternary.FromInt(7)}); err != nil {
		t.Fatal(err)
	}
	if w, _ := m.Read(3); w.Int() != 7 {
		t.Error("SetAll did not store")
	}
	if err := m.SetAll(map[int]ternary.Word{99: {}}); err == nil {
		t.Error("SetAll out of range succeeded")
	}
	m.Reset()
	if w, _ := m.Read(3); !w.IsZero() {
		t.Error("Reset did not clear contents")
	}
	if r, wr := m.Accesses(); r != 1 || wr != 0 {
		// The Read after Reset counts 1; Reset cleared earlier stats.
		t.Errorf("Accesses() after reset = %d,%d", r, wr)
	}
}

func TestAccessCounters(t *testing.T) {
	m := New("TDM", 16)
	for i := 0; i < 5; i++ {
		if err := m.Write(i, ternary.FromInt(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Read(i); err != nil {
			t.Fatal(err)
		}
	}
	// Failed accesses must not count.
	m.Read(99)
	m.Write(99, ternary.Word{})
	r, w := m.Accesses()
	if r != 3 || w != 5 {
		t.Errorf("Accesses() = %d,%d; want 3,5", r, w)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	m := New("TDM", 4)
	m.Write(0, ternary.FromInt(9))
	s := m.Snapshot()
	s[0] = ternary.Word{}
	if w, _ := m.Read(0); w.Int() != 9 {
		t.Error("Snapshot aliases memory")
	}
}
