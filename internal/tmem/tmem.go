// Package tmem models the ternary instruction and data memories (TIM and
// TDM, §IV-A of the paper): synchronous single-port, word-addressed arrays
// of 9-trit cells. A behavioural model stands in for the ternary SRAM of
// [11]; the evaluation framework consumes only its cell counts and access
// statistics (see DESIGN.md §4, substitution 6).
package tmem

import (
	"fmt"

	"repro/internal/ternary"
)

// MaxWords is the largest addressable memory: the full 9-trit address
// space, 3^9 words.
const MaxWords = ternary.WordStates

// Memory is a word-addressed ternary memory. Cells are stored in the
// bit-plane form (ternary.Packed) so the simulator hot path reads and
// writes without per-trit conversion; the Word-typed accessors convert at
// the boundary and remain the canonical interface for tests and tools.
type Memory struct {
	name  string
	words []ternary.Packed

	reads  uint64
	writes uint64
}

// New returns a memory holding size 9-trit words. It panics if size is not
// in (0, MaxWords], since that is a construction-time configuration error.
func New(name string, size int) *Memory {
	if size <= 0 || size > MaxWords {
		panic(fmt.Sprintf("tmem: invalid size %d for %s (max %d)", size, name, MaxWords))
	}
	return &Memory{name: name, words: make([]ternary.Packed, size)}
}

// Name returns the memory's name ("TIM"/"TDM" conventionally).
func (m *Memory) Name() string { return m.name }

// Size returns the number of words.
func (m *Memory) Size() int { return len(m.words) }

// Cells returns the number of ternary storage cells (trits).
func (m *Memory) Cells() int { return len(m.words) * ternary.WordTrits }

// EncodedBits returns the storage in bits when the memory is emulated with
// binary-encoded ternary cells (2 bits per trit), the Table V accounting.
func (m *Memory) EncodedBits() int { return m.Cells() * ternary.BitsPerTrit }

// ReadP returns the packed word at index addr — the simulator hot path.
// Addressing beyond the physical size is an access fault, surfaced as an
// error exactly like the hardware's out-of-space condition.
func (m *Memory) ReadP(addr int) (ternary.Packed, error) {
	if addr < 0 || addr >= len(m.words) {
		return ternary.Packed{}, fmt.Errorf("tmem: %s read at %d out of range [0,%d)", m.name, addr, len(m.words))
	}
	m.reads++
	return m.words[addr], nil
}

// WriteP stores q at index addr, with the same bounds behaviour as ReadP.
func (m *Memory) WriteP(addr int, q ternary.Packed) error {
	if addr < 0 || addr >= len(m.words) {
		return fmt.Errorf("tmem: %s write at %d out of range [0,%d)", m.name, addr, len(m.words))
	}
	m.writes++
	m.words[addr] = q
	return nil
}

// Read returns the word at index addr (ReadP through the Word boundary).
func (m *Memory) Read(addr int) (ternary.Word, error) {
	q, err := m.ReadP(addr)
	return q.Unpack(), err
}

// Write stores w at index addr, with the same bounds behaviour as Read.
func (m *Memory) Write(addr int, w ternary.Word) error {
	return m.WriteP(addr, ternary.Pack(w))
}

// ReadWord is Read addressed by a 9-trit word using the unsigned
// interpretation of §II-A.
func (m *Memory) ReadWord(addr ternary.Word) (ternary.Word, error) {
	return m.Read(addr.UIndex())
}

// WriteWord is Write addressed by a 9-trit word.
func (m *Memory) WriteWord(addr, w ternary.Word) error {
	return m.Write(addr.UIndex(), w)
}

// LoadImage copies img into the memory starting at address 0, the
// program-load path. It fails if the image does not fit.
func (m *Memory) LoadImage(img []ternary.Word) error {
	if len(img) > len(m.words) {
		return fmt.Errorf("tmem: %s image of %d words exceeds size %d", m.name, len(img), len(m.words))
	}
	for i, w := range img {
		m.words[i] = ternary.Pack(w)
	}
	return nil
}

// SetAll initialises sparse contents (address → word), as produced by the
// assembler's .data section.
func (m *Memory) SetAll(init map[int]ternary.Word) error {
	for a, w := range init {
		if a < 0 || a >= len(m.words) {
			return fmt.Errorf("tmem: %s init at %d out of range [0,%d)", m.name, a, len(m.words))
		}
		m.words[a] = ternary.Pack(w)
	}
	return nil
}

// Reset zeroes contents and statistics.
func (m *Memory) Reset() {
	for i := range m.words {
		m.words[i] = ternary.Packed{}
	}
	m.reads, m.writes = 0, 0
}

// Accesses returns the read and write counts since construction or Reset,
// inputs to the memory power model.
func (m *Memory) Accesses() (reads, writes uint64) { return m.reads, m.writes }

// Snapshot returns a copy of the memory contents (for test comparison).
func (m *Memory) Snapshot() []ternary.Word {
	s := make([]ternary.Word, len(m.words))
	for i, q := range m.words {
		s[i] = q.Unpack()
	}
	return s
}
