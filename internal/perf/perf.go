// Package perf implements the performance estimator of the hardware-level
// evaluation framework (§III-B, Fig. 3): it joins the cycle-accurate
// simulator's counts with the gate-level analyzer's timing/power results
// into the implementation-aware metrics the paper reports — Dhrystone
// DMIPS, DMIPS/MHz (Table II) and DMIPS/W (Tables IV and V).
package perf

import (
	"fmt"

	"repro/internal/gate"
)

// DhrystoneDivisor converts Dhrystones/second into DMIPS: the VAX 11/780
// reference executed 1757 Dhrystones/second ([23]).
const DhrystoneDivisor = 1757.0

// DMIPSPerMHz returns the frequency-normalised Dhrystone rating for a
// core that needs cyclesPerIteration clock cycles per Dhrystone loop.
func DMIPSPerMHz(cyclesPerIteration float64) float64 {
	if cyclesPerIteration <= 0 {
		return 0
	}
	return 1e6 / (DhrystoneDivisor * cyclesPerIteration)
}

// DMIPS returns the absolute Dhrystone rating at freqMHz.
func DMIPS(freqMHz, cyclesPerIteration float64) float64 {
	return DMIPSPerMHz(cyclesPerIteration) * freqMHz
}

// DMIPSPerWatt returns the efficiency metric of Tables IV and V.
func DMIPSPerWatt(freqMHz, cyclesPerIteration, powerW float64) float64 {
	if powerW <= 0 {
		return 0
	}
	return DMIPS(freqMHz, cyclesPerIteration) / powerW
}

// CoreRow is one column of Table II.
type CoreRow struct {
	Name         string
	ISA          string
	Instructions int
	Stages       int
	Multiplier   bool
	DMIPSPerMHz  float64
	MemoryCells  int    // instruction-memory cells for the Dhrystone image
	CellUnit     string // "trits" or "bits"
}

// FormatCell renders the memory-cell figure the way the paper does
// ("11.6K trits").
func (r CoreRow) FormatCell() string {
	return fmt.Sprintf("%.1fK %s", float64(r.MemoryCells)/1000, r.CellUnit)
}

// Implementation is a Table IV/V style implementation summary for the
// ART-9 core in one technology.
type Implementation struct {
	Tech      string
	VoltageV  float64
	FreqMHz   float64
	Gates     int // Table IV: standard ternary cells
	ALMs      int // Table V
	Registers int // Table V
	RAMBits   int // Table V
	PowerW    float64
	DMIPS     float64
	DMIPSPerW float64
}

// Estimate builds the implementation summary from the analyzer output,
// the chosen operating frequency (0 → fmax), Dhrystone cycles per
// iteration, and the memory configuration.
func Estimate(an *gate.Analysis, tech *gate.Technology, freqMHz, cyclesPerIter float64, memTrits int, memAccessPerCycle float64, ramBits int) Implementation {
	if freqMHz <= 0 {
		freqMHz = an.FmaxMHz
	}
	p := an.PowerW(tech, freqMHz, memTrits, memAccessPerCycle)
	return Implementation{
		Tech:      an.Tech,
		VoltageV:  tech.VoltageV,
		FreqMHz:   freqMHz,
		Gates:     an.Gates,
		ALMs:      an.ALMs,
		Registers: an.Registers,
		RAMBits:   ramBits,
		PowerW:    p,
		DMIPS:     DMIPS(freqMHz, cyclesPerIter),
		DMIPSPerW: DMIPSPerWatt(freqMHz, cyclesPerIter, p),
	}
}
