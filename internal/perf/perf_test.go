package perf

import (
	"math"
	"testing"

	"repro/internal/gate"
)

func TestDMIPSPerMHzCrossCheck(t *testing.T) {
	// E8 (DESIGN.md): the paper's Table II and Table III are mutually
	// consistent at 100 Dhrystone iterations:
	//   ART-9: 134,200 cycles / 100 iter → 0.42 DMIPS/MHz
	//   PicoRV32: 186,607 / 100 → 0.31 DMIPS/MHz
	cases := []struct {
		cycles float64
		want   float64
		tol    float64
	}{
		{1342.00, 0.42, 0.01},
		{1866.07, 0.31, 0.01},
		{876, 0.65, 0.01},
	}
	for _, c := range cases {
		got := DMIPSPerMHz(c.cycles)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("DMIPSPerMHz(%f) = %f, want %f±%f", c.cycles, got, c.want, c.tol)
		}
	}
}

func TestDMIPSZeroSafe(t *testing.T) {
	if DMIPSPerMHz(0) != 0 || DMIPSPerWatt(100, 1000, 0) != 0 {
		t.Error("zero inputs must not divide by zero")
	}
}

func TestDMIPSScalesLinearly(t *testing.T) {
	if math.Abs(DMIPS(300, 1342)-3*DMIPS(100, 1342)) > 1e-9 {
		t.Error("DMIPS not linear in frequency")
	}
}

func TestTableIVReproduction(t *testing.T) {
	// E5: CNTFET implementation at fmax with the paper's 1342
	// cycles/iteration must land near Table IV: 652 gates-class,
	// ≈42.7 µW, ≈3.06e6 DMIPS/W.
	n := gate.BuildART9()
	tech := gate.CNTFET32()
	an := gate.Analyze(n, tech)
	impl := Estimate(an, tech, 0, 1342, 0, 0, 0)
	if impl.PowerW < 30e-6 || impl.PowerW > 60e-6 {
		t.Errorf("CNTFET power = %.1f µW, want ≈42.7", impl.PowerW*1e6)
	}
	if impl.DMIPSPerW < 2e6 || impl.DMIPSPerW > 4.5e6 {
		t.Errorf("CNTFET DMIPS/W = %.3g, want ≈3.06e6", impl.DMIPSPerW)
	}
	if impl.Gates < 489 || impl.Gates > 815 {
		t.Errorf("gates = %d, want ≈652", impl.Gates)
	}
}

func TestTableVReproduction(t *testing.T) {
	// E6: FPGA implementation at 150 MHz with two 256-word memories:
	// ≈1.09 W, ≈57.8 DMIPS/W, 9216 RAM bits.
	n := gate.BuildART9()
	tech := gate.StratixVEmulation()
	an := gate.Analyze(n, tech)
	memTrits := 2 * 256 * 9
	impl := Estimate(an, tech, 150, 1342, memTrits, 1.2, memTrits*2)
	if impl.RAMBits != 9216 {
		t.Errorf("RAM bits = %d, want 9216", impl.RAMBits)
	}
	if impl.PowerW < 0.9 || impl.PowerW > 1.3 {
		t.Errorf("FPGA power = %.2f W, want ≈1.09", impl.PowerW)
	}
	if impl.DMIPSPerW < 40 || impl.DMIPSPerW > 75 {
		t.Errorf("FPGA DMIPS/W = %.1f, want ≈57.8", impl.DMIPSPerW)
	}
	if an.FmaxMHz < 150 {
		t.Errorf("fmax %.1f < 150 MHz operating point", an.FmaxMHz)
	}
}

func TestEstimateDefaultsToFmax(t *testing.T) {
	n := gate.BuildART9()
	tech := gate.CNTFET32()
	an := gate.Analyze(n, tech)
	impl := Estimate(an, tech, 0, 1342, 0, 0, 0)
	if math.Abs(impl.FreqMHz-an.FmaxMHz) > 1e-9 {
		t.Errorf("freq = %f, want fmax %f", impl.FreqMHz, an.FmaxMHz)
	}
}

func TestFormatCell(t *testing.T) {
	r := CoreRow{MemoryCells: 11600, CellUnit: "trits"}
	if got := r.FormatCell(); got != "11.6K trits" {
		t.Errorf("FormatCell = %q", got)
	}
}
