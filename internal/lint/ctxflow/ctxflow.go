// Package ctxflow enforces the context-threading convention of the
// dispatch stack: cancellation is what lets a disconnected client, a
// draining server, or a failover front stop paying for work nobody
// will receive, so every dispatch path must carry the caller's
// context.Context — never a fresh context.Background() that severs the
// chain.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer enforces ctx-first signatures on exported dispatchers and
// forbids dispatching with context.Background()/TODO() where a caller
// context exists.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "dispatch paths must thread the caller's context.Context\n\n" +
		"In the dispatch packages (internal/engine, internal/remote, internal/serve):\n" +
		"  - an exported function or method whose body dispatches work (calls a\n" +
		"    Run/Stream/Submit/DispatchChunk method taking a context) must itself\n" +
		"    take a context.Context as its first parameter;\n" +
		"  - a function that has a context parameter must not dispatch with\n" +
		"    context.Background() or context.TODO() — that severs cancellation.\n" +
		"Test files and *test harness packages are exempt.",
	Run: run,
}

// scopePrefixes are the package paths the convention governs.
var scopePrefixes = []string{
	"repro/internal/engine",
	"repro/internal/remote",
	"repro/internal/serve",
}

// dispatchMethods are the method names that submit work to a backend.
var dispatchMethods = map[string]bool{
	"Run":           true,
	"Stream":        true,
	"Submit":        true,
	"DispatchChunk": true,
}

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	inScope := false
	for _, p := range scopePrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			inScope = true
			break
		}
	}
	if !inScope || strings.HasSuffix(pass.Pkg.Name(), "test") {
		return nil, nil
	}

	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.File(file.Pos()).Name(), "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isDispatch reports whether call submits work: a Run/Stream/Submit/
// DispatchChunk method call whose first argument is a context.Context.
func isDispatch(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !dispatchMethods[sel.Sel.Name] || len(call.Args) == 0 {
		return false
	}
	// Require a method (selection on a value), not a package function.
	if _, ok := pass.TypesInfo.Selections[sel]; !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	return ok && tv.Type != nil && isContextType(tv.Type)
}

// freshContext reports whether e is a direct context.Background() or
// context.TODO() call.
func freshContext(pass *analysis.Pass, e ast.Expr) (string, bool) {
	call, ok := analysis.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return "context." + obj.Name(), true
	}
	return "", false
}

// hasCtxParam reports whether the field list's first parameter is a
// context.Context, and whether any parameter is.
func ctxParams(pass *analysis.Pass, params *ast.FieldList) (first, any bool) {
	if params == nil {
		return false, false
	}
	for i, f := range params.List {
		tv, ok := pass.TypesInfo.Types[f.Type]
		if !ok || tv.Type == nil || !isContextType(tv.Type) {
			continue
		}
		if i == 0 {
			first = true
		}
		return first, true
	}
	return false, false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	first, hasCtx := ctxParams(pass, fd.Type.Params)

	// Each function literal introduces its own parameter frame: a
	// goroutine body without a ctx parameter inside a ctx-taking method
	// is judged against the enclosing function's contract, so track a
	// stack of "a caller context is available here" frames.
	type frame struct {
		fn      ast.Node
		hasCtx  bool
		reports []*ast.CallExpr
	}
	frames := []*frame{{fn: fd, hasCtx: hasCtx}}

	dispatches := 0
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			if top := frames[len(frames)-1]; top.fn == stack[len(stack)-1] {
				frames = frames[:len(frames)-1]
			}
			stack = stack[:len(stack)-1]
			return true
		}
		if fl, ok := n.(*ast.FuncLit); ok {
			_, litHas := ctxParams(pass, fl.Type.Params)
			// A closure inherits the enclosing frame's context access:
			// it can capture the ctx variable even without a parameter.
			frames = append(frames, &frame{fn: fl, hasCtx: litHas || frames[len(frames)-1].hasCtx})
		}
		if call, ok := n.(*ast.CallExpr); ok && isDispatch(pass, call) {
			dispatches++
			if name, fresh := freshContext(pass, call.Args[0]); fresh && frames[len(frames)-1].hasCtx {
				sel := call.Fun.(*ast.SelectorExpr)
				pass.Reportf(call.Args[0].Pos(), "%s passed to %s while a caller context is in scope; thread the caller's ctx so cancellation reaches the dispatch", name, sel.Sel.Name)
			}
		}
		stack = append(stack, n)
		return true
	})

	if dispatches > 0 && fd.Name.IsExported() && !first {
		pass.Reportf(fd.Name.Pos(), "exported %s dispatches work but does not take a context.Context first parameter; dispatch entry points must accept the caller's context", fd.Name.Name)
	}
}
