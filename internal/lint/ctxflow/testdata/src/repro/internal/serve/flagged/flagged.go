// Package flagged exercises the ctxflow rules inside the dispatch
// scope (its fixture path sits under repro/internal/serve).
package flagged

import (
	"context"

	"repro/internal/engine"
)

// Dispatch submits work without accepting the caller's context.
func Dispatch(e *engine.Engine) error { // want `exported Dispatch dispatches work but does not take a context\.Context first parameter`
	_, err := e.Run(context.Background(), nil)
	return err
}

// Severed has the caller's context but dispatches with a fresh one.
func Severed(ctx context.Context, e *engine.Engine) error {
	_, err := e.Run(context.Background(), nil) // want `context\.Background passed to Run while a caller context is in scope`
	return err
}

// Spawned dispatches from a goroutine closure; the closure inherits the
// enclosing method's context access, so minting a fresh one still
// severs cancellation.
func Spawned(ctx context.Context, e *engine.Engine) {
	go func() {
		_ = e.Submit(context.TODO(), engine.Job{}) // want `context\.TODO passed to Submit while a caller context is in scope`
	}()
}
