// Package clean threads contexts correctly; ctxflow must stay silent
// here.
package clean

import (
	"context"

	"repro/internal/engine"
)

// Threaded is the sanctioned shape: ctx first, passed through.
func Threaded(ctx context.Context, e *engine.Engine) error {
	_, err := e.Run(ctx, nil)
	return err
}

// Derived contexts keep the cancellation chain intact.
func Bounded(ctx context.Context, e *engine.Engine) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return e.Submit(ctx, engine.Job{})
}

// helper is unexported: the ctx-first rule binds only exported entry
// points, and with no caller context in scope minting one is legal.
func helper(e *engine.Engine) error {
	_, err := e.Run(context.Background(), nil)
	return err
}
