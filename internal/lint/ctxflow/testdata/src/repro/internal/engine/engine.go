// Package engine is a fixture stub of repro/internal/engine: a backend
// with the ctx-first dispatch methods ctxflow keys on.
package engine

import "context"

type (
	Job    struct{}
	Result struct{}
)

type Engine struct{}

func (e *Engine) Run(ctx context.Context, jobs []Job) ([]Result, error) { return nil, nil }
func (e *Engine) Submit(ctx context.Context, job Job) error             { return nil }
