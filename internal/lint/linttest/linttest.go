// Package linttest is the fixture harness for the internal/lint
// analyzers — the role golang.org/x/tools/go/analysis/analysistest
// plays upstream, rebuilt on the standard library because this
// container cannot vendor x/tools.
//
// A test calls Run(t, analyzer, "pkg/path"...). Each path names a
// fixture package under the analyzer's testdata/src directory (e.g.
// testdata/src/repro/internal/engine). Fixture imports resolve
// fixture-first — an import of "repro/internal/engine" finds the stub
// in testdata, letting fixtures trigger on the exact package paths the
// analyzers key on — and fall back to the process-wide load.Shared()
// resolver for the standard library.
//
// Expected diagnostics are declared in the fixtures with analysistest's
// comment syntax:
//
//	err == engine.ErrClosed // want `use errors\.Is`
//
// Each // want comment carries one or more quoted regular expressions
// (backquoted or double-quoted) that must match, in order of
// appearance, the messages of diagnostics reported on that line. Every
// diagnostic must be wanted and every want must be matched; either
// mismatch fails the test.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Run loads each fixture package and applies the analyzer, comparing
// reported diagnostics against the // want comments in the fixture
// sources.
func Run(t *testing.T, an *analysis.Analyzer, paths ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	ld := &fixtureLoader{root: root, fset: load.Shared().Fset, pkgs: make(map[string]*fixturePkg)}
	for _, path := range paths {
		path := path
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			pkg, err := ld.load(path)
			if err != nil {
				t.Fatalf("linttest: loading fixture %s: %v", path, err)
			}
			check(t, an, ld.fset, pkg)
		})
	}
}

// fixturePkg is one type-checked fixture package.
type fixturePkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// fixtureLoader type-checks fixture packages from a testdata/src tree,
// resolving imports fixture-first, then via the shared resolver.
type fixtureLoader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*fixturePkg
}

func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	p := &fixturePkg{path: path, info: load.NewInfo()}
	for _, name := range names {
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		p.files = append(p.files, file)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, p.files, p.info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("fixture does not type-check: %v", typeErrs[0])
	}
	p.types = tpkg
	l.pkgs[path] = p
	return p, nil
}

// importPkg resolves an import from a fixture: a testdata stub if one
// exists at that path, the real (shared-resolver) package otherwise.
func (l *fixtureLoader) importPkg(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	p, err := load.Shared().Ensure(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one parsed // want regexp, keyed by file and line.
type expectation struct {
	file    string // base name
	line    int
	rx      *regexp.Regexp
	matched bool
}

// check runs the analyzer over one fixture package and reconciles the
// diagnostics with the fixtures' want comments.
func check(t *testing.T, an *analysis.Analyzer, fset *token.FileSet, pkg *fixturePkg) {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.files {
		name := filepath.Base(fset.Position(file.Pos()).Filename)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				line := fset.Position(c.Pos()).Line
				for _, rx := range parseWant(t, name, line, c.Text) {
					wants = append(wants, &expectation{file: name, line: line, rx: rx})
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  an,
		Fset:      fset,
		Files:     pkg.files,
		Pkg:       pkg.types,
		TypesInfo: pkg.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := an.Run(pass); err != nil {
		t.Fatalf("%s: %v", an.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		base := filepath.Base(pos.Filename)
		found := false
		for _, w := range wants {
			if w.matched || w.file != base || w.line != pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", base, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx)
		}
	}
}

// parseWant extracts the regexps from a comment if it is a // want
// comment; nil otherwise.
func parseWant(t *testing.T, file string, line int, text string) []*regexp.Regexp {
	t.Helper()
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil // /* */ comments never carry expectations
	}
	body = strings.TrimSpace(body)
	body, ok = strings.CutPrefix(body, "want ")
	if !ok {
		return nil
	}
	var rxs []*regexp.Regexp
	for {
		body = strings.TrimSpace(body)
		if body == "" {
			break
		}
		quoted, err := strconv.QuotedPrefix(body)
		if err != nil {
			t.Fatalf("%s:%d: malformed // want comment: %q", file, line, text)
		}
		pat, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s:%d: malformed // want pattern %s: %v", file, line, quoted, err)
		}
		rx, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s:%d: bad // want regexp %s: %v", file, line, quoted, err)
		}
		rxs = append(rxs, rx)
		body = body[len(quoted):]
	}
	if len(rxs) == 0 {
		t.Fatalf("%s:%d: // want comment carries no patterns", file, line)
	}
	return rxs
}
