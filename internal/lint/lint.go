// Package lint assembles the repo's domain-specific static-analysis
// suite: the go/analysis-style analyzers that mechanize the Evaluator
// stack's conventions (typed-error matching, evaluator lifecycles,
// context threading, the balanced-ternary value domain, and the
// machine-boundary wire format). cmd/art9-lint compiles them into a
// multichecker; linttest runs them over fixture packages in tests.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/closecheck"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/tritrange"
	"repro/internal/lint/typederr"
	"repro/internal/lint/wirespec"
)

// All returns every analyzer of the suite, in stable order. New
// analyzers register here and nowhere else — the driver, the vettool
// mode and the docs all derive from this list.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		closecheck.Analyzer,
		ctxflow.Analyzer,
		tritrange.Analyzer,
		typederr.Analyzer,
		wirespec.Analyzer,
	}
}
