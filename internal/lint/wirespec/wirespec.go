// Package wirespec mechanizes the machine-boundary rule of the
// Evaluator stack: only serializable data crosses a machine boundary.
// Everything reachable from bench.JobSpec (the job a remote peer
// re-creates), the /v1 request/reply structs, and the bench.Report
// subtree must round-trip through encoding/json with stable snake_case
// field names — no funcs, no channels, no silently-dropped unexported
// fields, no duplicate or camelCase tags that would fork the wire
// format between peers on different commits.
package wirespec

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"regexp"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer checks JSON-serializability and tag discipline of every
// type reachable from the stack's wire roots.
var Analyzer = &analysis.Analyzer{
	Name: "wirespec",
	Doc: "types crossing a machine boundary must serialize with stable snake_case JSON tags\n\n" +
		"Roots: bench.JobSpec and bench.Report (by name), plus every struct in\n" +
		"internal/serve and internal/remote that declares json tags (the /v1\n" +
		"request/reply bodies). Every struct reachable from a root must give each\n" +
		"exported field an explicit snake_case json tag, unique within the struct;\n" +
		"must not contain func, channel or unsafe.Pointer fields; must not rely on\n" +
		"unexported fields (silently dropped by encoding/json); and map keys must\n" +
		"be strings or integers. Types with their own MarshalJSON/MarshalText are\n" +
		"trusted leaves.",
	Run: run,
}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

type rootType struct {
	name string
	typ  types.Type
	pos  token.Pos
}

func run(pass *analysis.Pass) (any, error) {
	var roots []rootType
	switch pass.Pkg.Path() {
	case "repro/internal/bench":
		for _, name := range []string{"JobSpec", "Report"} {
			if obj, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName); ok {
				roots = append(roots, rootType{name: name, typ: obj.Type(), pos: obj.Pos()})
			}
		}
	case "repro/internal/serve", "repro/internal/remote":
		roots = taggedStructs(pass)
	default:
		return nil, nil
	}

	w := &walker{pass: pass, seen: make(map[types.Type]bool)}
	for _, r := range roots {
		w.walk(r.typ, r.name, r.pos)
	}
	return nil, nil
}

// taggedStructs returns every named struct type declared in the package
// that carries at least one json tag — the request/reply bodies of the
// /v1 surface, exported or not.
func taggedStructs(pass *analysis.Pass) []rootType {
	var roots []rootType
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.File(file.Pos()).Name(), "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i := 0; i < st.NumFields(); i++ {
				if reflect.StructTag(st.Tag(i)).Get("json") != "" {
					roots = append(roots, rootType{name: ts.Name.Name, typ: obj.Type(), pos: ts.Name.Pos()})
					break
				}
			}
			return true
		})
	}
	return roots
}

type walker struct {
	pass *analysis.Pass
	seen map[types.Type]bool
}

// report emits one diagnostic for the wire path. Findings anchor at the
// nearest declaration inside the package under analysis (reachable
// types may live in other packages).
func (w *walker) report(pos token.Pos, path, format string, args ...any) {
	w.pass.Reportf(pos, "%s: %s", path, fmt.Sprintf(format, args...))
}

// marshalerLeaf reports whether t (or *t) provides its own MarshalJSON
// or MarshalText — such types own their wire form (time.Time,
// json.RawMessage) and are not walked into.
func marshalerLeaf(t types.Type) bool {
	for _, name := range []string{"MarshalJSON", "MarshalText"} {
		for _, recv := range []types.Type{t, types.NewPointer(t)} {
			obj, _, _ := types.LookupFieldOrMethod(recv, true, nil, name)
			if fn, ok := obj.(*types.Func); ok {
				sig := fn.Type().(*types.Signature)
				if sig.Params().Len() == 0 && sig.Results().Len() == 2 {
					return true
				}
			}
		}
	}
	return false
}

// walk validates t and everything reachable from it. path names how the
// type was reached; pos anchors diagnostics.
func (w *walker) walk(t types.Type, path string, pos token.Pos) {
	if w.seen[t] {
		return
	}
	w.seen[t] = true

	switch u := t.(type) {
	case *types.Named:
		if marshalerLeaf(u) {
			return
		}
		// Prefer reporting at the named type's own declaration when it
		// belongs to the package under analysis.
		if u.Obj().Pkg() == w.pass.Pkg {
			pos = u.Obj().Pos()
		}
		w.walk(u.Underlying(), path, pos)
	case *types.Pointer:
		w.walk(u.Elem(), path, pos)
	case *types.Slice:
		w.walk(u.Elem(), path+"[]", pos)
	case *types.Array:
		w.walk(u.Elem(), path+"[]", pos)
	case *types.Map:
		if !jsonKey(u.Key()) {
			w.report(pos, path, "map key type %s does not serialize as a JSON object key (want string or integer)", u.Key())
		}
		w.walk(u.Elem(), path+"[]", pos)
	case *types.Chan:
		w.report(pos, path, "channel type %s cannot cross a machine boundary", t)
	case *types.Signature:
		w.report(pos, path, "func type %s cannot cross a machine boundary", t)
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			w.report(pos, path, "unsafe.Pointer cannot cross a machine boundary")
		}
	case *types.Interface:
		// Interfaces marshal by dynamic type: legal on the encode side,
		// but a peer cannot round-trip them back into the same shape.
		w.report(pos, path, "interface field cannot round-trip through JSON; use a concrete wire type")
	case *types.Struct:
		w.checkStruct(u, path, pos)
	}
}

func (w *walker) checkStruct(st *types.Struct, path string, pos token.Pos) {
	tags := make(map[string]string) // wire name -> field that claimed it
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		name, _, _ := strings.Cut(tag, ",")
		fpath := path + "." + f.Name()
		// Anchor at the field itself when it is declared in the package
		// under analysis; findings in imported types anchor at the root.
		pos := pos
		if f.Pkg() == w.pass.Pkg && f.Pos().IsValid() {
			pos = f.Pos()
		}

		if name == "-" {
			continue // explicitly excluded from the wire form
		}
		if !f.Exported() && !f.Embedded() {
			w.report(pos, fpath, "unexported field is silently dropped by encoding/json; export it with a tag or exclude it with json:\"-\"")
			continue
		}
		if f.Embedded() {
			// An embedded field without a tag inlines its fields; with
			// a tag it serializes as a nested object under that name.
			w.walk(f.Type(), fpath, pos)
			if name == "" {
				continue
			}
		} else {
			if tag == "" {
				w.report(pos, fpath, "exported field has no json tag; wire names must be explicit and stable")
				continue
			}
			if name == "" {
				w.report(pos, fpath, "json tag %q has no name; wire names must be explicit, not derived from the Go identifier", tag)
				continue
			}
		}
		if !snakeCase.MatchString(name) {
			w.report(pos, fpath, "json tag %q is not snake_case", name)
		}
		if prev, dup := tags[name]; dup {
			w.report(pos, fpath, "json tag %q duplicates the tag on field %s; encoding/json drops duplicates", name, prev)
		}
		tags[name] = f.Name()
		if !f.Embedded() {
			w.walk(f.Type(), fpath, pos)
		}
	}
}

// jsonKey reports whether k serializes as a JSON object key.
func jsonKey(k types.Type) bool {
	if marshalerLeaf(k) {
		return true
	}
	b, ok := k.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsString|types.IsInteger) != 0
}
