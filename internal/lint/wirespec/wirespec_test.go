package wirespec_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/wirespec"
)

func TestWireSpec(t *testing.T) {
	linttest.Run(t, wirespec.Analyzer, "repro/internal/bench", "repro/internal/serve")
}
