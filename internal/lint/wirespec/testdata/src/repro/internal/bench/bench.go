// Package bench exercises wirespec: the JobSpec and Report wire roots
// carrying one of each violation class.
package bench

// JobSpec crosses the machine boundary to remote peers.
type JobSpec struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`

	Done     chan struct{} `json:"done"`     // want `channel type chan struct\{\} cannot cross a machine boundary`
	Callback func()        `json:"callback"` // want `func type func\(\) cannot cross a machine boundary`
}

// Report is the batch result peers return.
type Report struct {
	Schema  string  `json:"schema"`
	WallMS  float64 `json:"wallMs"` // want `json tag "wallMs" is not snake_case`
	Workers int     // want `exported field has no json tag`
	Count   int     `json:"schema"` // want `json tag "schema" duplicates the tag on field Schema`
	hidden  int     // want `unexported field is silently dropped`
	Skip    func()  `json:"-"` // excluded from the wire form: legal

	Jobs []JobRow `json:"jobs"`
}

// JobRow is not itself a root; wirespec reaches it through Report.Jobs.
type JobRow struct {
	Name string `json:"name"`
	Err  error  `json:"err"` // want `interface field cannot round-trip through JSON`
}
