// Package serve holds a compliant /v1 wire surface; wirespec must be
// silent here.
package serve

// evalRequest is a wire root by virtue of its json tags (the /v1
// request bodies are unexported in the real server too).
type evalRequest struct {
	Source     string `json:"source"`
	Iterations int    `json:"iterations"`
	Timeout    int64  `json:"timeout_ms"`
}

// statsReply nests another tagged struct; the walk follows it.
type statsReply struct {
	Jobs    int        `json:"jobs"`
	Backend backendRow `json:"backend"`
}

type backendRow struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// scheduler is in-process state that never crosses the wire: it has no
// json tags, so wirespec does not treat it as a root even though its
// fields could never serialize.
type scheduler struct {
	queue   chan int
	onDrain func()
}
