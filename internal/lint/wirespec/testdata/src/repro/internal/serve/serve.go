// Package serve holds a compliant /v1 wire surface; wirespec must be
// silent here.
package serve

import "encoding/json"

// evalRequest is a wire root by virtue of its json tags (the /v1
// request bodies are unexported in the real server too).
type evalRequest struct {
	Source     string `json:"source"`
	Iterations int    `json:"iterations"`
	Timeout    int64  `json:"timeout_ms"`
}

// statsReply nests another tagged struct; the walk follows it.
type statsReply struct {
	Jobs    int        `json:"jobs"`
	Backend backendRow `json:"backend"`
}

type backendRow struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// scheduler is in-process state that never crosses the wire: it has no
// json tags, so wirespec does not treat it as a root even though its
// fields could never serialize.
type scheduler struct {
	queue   chan int
	onDrain func()
}

// The /v1/cache bodies: opaque cached values ride as json.RawMessage,
// which owns its wire form (MarshalJSON) and is a trusted leaf — the
// compliant shape of the real cache request/reply structs.
type cacheLookupRequest struct {
	Keys []string `json:"keys"`
}

type cacheRow struct {
	Key   string          `json:"key"`
	Found bool            `json:"found"`
	Value json.RawMessage `json:"value,omitempty"`
}

type cacheFillRequest struct {
	Entries []cacheFillEntry `json:"entries"`
}

type cacheFillEntry struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

type cacheFillReply struct {
	Stored int `json:"stored"`
}

// badCacheRow is the shape the RawMessage discipline exists to prevent:
// an interface-typed value would marshal by dynamic type and never
// round-trip identically through a sibling's store.
type badCacheRow struct {
	Key   string `json:"key"`
	Value any    `json:"value"` // want `interface field cannot round-trip through JSON`
}
