// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface this repo's analyzers use.
//
// The container this repo builds in has no module proxy access, so
// x/tools cannot be vendored; rather than give up compiler-grade
// enforcement of the Evaluator-stack invariants, internal/lint carries
// this shim. The types are deliberately field-for-field compatible with
// the upstream API (Analyzer.Name/Doc/Run, Pass.Fset/Files/Pkg/
// TypesInfo/Report), so if x/tools ever becomes available the analyzers
// port by swapping one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis: a named pass over a single
// type-checked package that reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then detail.
	Doc string

	// Run applies the analyzer to a package.
	Run func(*Pass) (any, error)
}

// Diagnostic is one reported problem at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass provides one analyzer run with a single type-checked package and
// the sink for its diagnostics. Analyzers must treat every field as
// read-only.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report emits one diagnostic. The driver owns ordering and
	// rendering.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Inspect walks every file of the pass in source order, calling f for
// each node; f returning false prunes the subtree, as ast.Inspect does.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// Unparen strips any enclosing parentheses from e (ast.Unparen, which
// the module's go directive predates).
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// WithStack walks every file calling f with each node and the stack of
// its ancestors (outermost first, not including the node itself).
// Returning false prunes the subtree. The stack slice is reused between
// calls; callers must copy it to retain it.
func (p *Pass) WithStack(f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			recurse := f(n, stack)
			if recurse {
				stack = append(stack, n)
			}
			return recurse
		})
	}
}
