package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestRegistry pins the analyzer suite's shape: the five invariants,
// unique names, and the one-line-summary doc convention the -list
// output and README rely on.
func TestRegistry(t *testing.T) {
	all := lint.All()
	if len(all) != 5 {
		t.Fatalf("All() = %d analyzers, want 5", len(all))
	}
	want := []string{"closecheck", "ctxflow", "tritrange", "typederr", "wirespec"}
	seen := make(map[string]bool)
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil {
			t.Errorf("%s: nil Run", a.Name)
		}
		summary, _, _ := strings.Cut(a.Doc, "\n")
		if summary == "" {
			t.Errorf("%s: Doc has no summary line", a.Name)
		}
	}
}
