package typederr_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/typederr"
)

func TestTypedErr(t *testing.T) {
	linttest.Run(t, typederr.Analyzer, "a", "clean")
}
