// Package typederr enforces the Evaluator stack's error-matching
// convention: the typed sentinel errors (engine.ErrClosed, ErrTimeout,
// ErrUnavailable, ErrInvalidOptions and their art9 facade aliases)
// travel wrapped — through fmt.Errorf("%w"), across the wire via
// bench.ErrorKindOf, re-typed by the remote client — so identity
// comparison with == or != silently stops matching the moment any layer
// wraps. The only correct check is errors.Is. Matching on the rendered
// message (err.Error() == "...", strings.Contains(err.Error(), ...)) is
// the same bug with extra steps.
package typederr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags identity and string comparisons against the stack's
// typed sentinel errors.
var Analyzer = &analysis.Analyzer{
	Name: "typederr",
	Doc: "compare typed evaluator errors with errors.Is, never == or string matching\n\n" +
		"The sentinel errors of the dispatch stack (engine.ErrClosed, ErrTimeout,\n" +
		"ErrUnavailable, ErrInvalidOptions, and the repro facade aliases) are wrapped\n" +
		"as they cross layers and machines, so == / != / switch-case identity checks\n" +
		"and Error() string matching give false negatives. Use errors.Is.",
	Run: run,
}

// sentinelPkgs are the packages whose exported Err* sentinels the
// convention covers: the engine that defines them and the facade that
// aliases them.
var sentinelPkgs = map[string]bool{
	"repro":                 true,
	"repro/internal/engine": true,
}

var sentinelNames = map[string]bool{
	"ErrClosed":         true,
	"ErrTimeout":        true,
	"ErrUnavailable":    true,
	"ErrInvalidOptions": true,
}

func run(pass *analysis.Pass) (any, error) {
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

	// sentinel reports whether e names one of the typed errors.
	sentinel := func(e ast.Expr) (string, bool) {
		e = analysis.Unparen(e)
		var id *ast.Ident
		switch x := e.(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		default:
			return "", false
		}
		obj, ok := pass.TypesInfo.Uses[id]
		if !ok {
			return "", false
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil {
			return "", false
		}
		if sentinelPkgs[v.Pkg().Path()] && sentinelNames[v.Name()] {
			return v.Name(), true
		}
		return "", false
	}

	// errorString reports whether e is a call of the error interface's
	// Error method (the rendered message).
	errorString := func(e ast.Expr) bool {
		call, ok := analysis.Unparen(e).(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" {
			return false
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		return ok && types.Implements(tv.Type, errorIface)
	}

	isString := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}

	// The identity-comparison rule binds everywhere, tests included —
	// a test comparing with == would pass today and silently stop
	// guarding once a layer wraps. The Error()-text heuristics are
	// relaxed in test files, which legitimately assert on rendered
	// messages.
	for _, file := range pass.Files {
		isTest := strings.HasSuffix(pass.Fset.File(file.Pos()).Name(), "_test.go")
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if name, ok := sentinel(side); ok {
						pass.Reportf(n.Pos(), "comparison with %s uses %s; sentinel errors are wrapped across layers, use errors.Is", name, n.Op)
						return true
					}
				}
				// err.Error() == "..." (either orientation) compares
				// the rendered message, which changes under wrapping.
				if isTest {
					return true
				}
				if (errorString(n.X) && isString(n.Y)) || (errorString(n.Y) && isString(n.X)) {
					pass.Reportf(n.Pos(), "matching on err.Error() text; use errors.Is (or errors.As) against the typed error")
				}
			case *ast.SwitchStmt:
				// switch err { case engine.ErrClosed: } is == in disguise.
				if n.Tag == nil {
					return true
				}
				tv, ok := pass.TypesInfo.Types[n.Tag]
				if !ok || tv.Type == nil || !types.Implements(tv.Type, errorIface) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := sentinel(e); ok {
							pass.Reportf(e.Pos(), "switch-case compares %s by identity; sentinel errors are wrapped across layers, use errors.Is", name)
						}
					}
				}
			case *ast.CallExpr:
				// strings.Contains/HasPrefix/HasSuffix/EqualFold over
				// a rendered error message.
				if isTest {
					return true
				}
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := pass.TypesInfo.Uses[sel.Sel]
				if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "strings" {
					return true
				}
				switch obj.Name() {
				case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
				default:
					return true
				}
				for _, arg := range n.Args {
					if errorString(arg) {
						pass.Reportf(n.Pos(), "strings.%s over err.Error() text; use errors.Is (or errors.As) against the typed error", obj.Name())
						break
					}
				}
			}
			return true
		})
	}
	return nil, nil
}
