// Package art9 is a fixture stub of the repro facade: the sentinel
// aliases it re-exports are covered by the same convention.
package art9

import "errors"

var (
	ErrClosed  = errors.New("art9: closed")
	ErrTimeout = errors.New("art9: timeout")
)
