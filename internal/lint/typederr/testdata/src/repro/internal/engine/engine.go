// Package engine is a fixture stub of repro/internal/engine: the typed
// sentinel errors typederr keys on, at the real package path.
package engine

import "errors"

var (
	ErrClosed         = errors.New("engine: closed")
	ErrTimeout        = errors.New("engine: timeout")
	ErrUnavailable    = errors.New("engine: unavailable")
	ErrInvalidOptions = errors.New("engine: invalid options")
)
