// Package clean holds the sanctioned error-matching forms; typederr
// must stay silent here.
package clean

import (
	"errors"

	"repro/internal/engine"
)

func Match(err error) bool {
	if errors.Is(err, engine.ErrClosed) {
		return true
	}
	return errors.Is(err, engine.ErrTimeout) || errors.Is(err, engine.ErrUnavailable)
}

// Other shows what stays legal: nil checks and identity between
// arbitrary (non-sentinel) errors are out of scope.
func Other(a, b error) bool {
	if a == nil {
		return false
	}
	return a == b
}
