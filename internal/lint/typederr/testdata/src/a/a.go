// Package a exercises every typederr rule: identity comparison, string
// matching on rendered messages, and switch-case identity.
package a

import (
	"errors"
	"strings"

	art9 "repro"
	"repro/internal/engine"
)

func Identity(err error) bool {
	if err == engine.ErrClosed { // want `comparison with ErrClosed uses ==`
		return true
	}
	if err != art9.ErrTimeout { // want `comparison with ErrTimeout uses !=`
		return false
	}
	return errors.Is(err, engine.ErrClosed) // the sanctioned form
}

func Text(err error) bool {
	if err.Error() == "engine: closed" { // want `matching on err\.Error\(\) text`
		return true
	}
	return strings.Contains(err.Error(), "timeout") // want `strings\.Contains over err\.Error\(\) text`
}

func Switch(err error) string {
	switch err {
	case engine.ErrUnavailable: // want `switch-case compares ErrUnavailable by identity`
		return "unavailable"
	case nil:
		return ""
	}
	return "other"
}
