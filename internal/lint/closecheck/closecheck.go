// Package closecheck enforces the Evaluator lifecycle convention:
// backends own goroutines and queued work, so every constructed
// evaluator must have a reachable Close, and Close's error — which
// reports jobs resolved with ErrClosed and per-backend shutdown
// failures — must not be silently dropped.
package closecheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags discarded Evaluator.Close() results and evaluator
// constructions with no reachable Close.
var Analyzer = &analysis.Analyzer{
	Name: "closecheck",
	Doc: "evaluators must be closed, and Close() errors must not be discarded\n\n" +
		"Flags (outside test files and *test harness packages):\n" +
		"  - ev.Close() or defer ev.Close() discarding the error when ev is an\n" +
		"    Evaluator-shaped value (has Run/Stream/Stats/Close). Assigning the\n" +
		"    error — even to _ — is an explicit, accepted acknowledgement.\n" +
		"  - an evaluator obtained from art9.New / engine.New* / remote.New* that\n" +
		"    is never closed and never escapes the constructing function.",
	Run: run,
}

// constructors maps package path to the constructor functions whose
// results demand a Close. Constructors whose results are returned,
// stored, or passed on transfer ownership and are not flagged.
var constructors = map[string]map[string]bool{
	"repro":                 {"New": true, "NewEngine": true},
	"repro/internal/engine": {"New": true, "NewShardSet": true, "NewShardSetOf": true, "NewBalancer": true, "NewAutoscaler": true},
	"repro/internal/remote": {"New": true, "NewBackend": true, "NewBackendWith": true},
}

func run(pass *analysis.Pass) (any, error) {
	// Test harness packages (faulttest, scenariotest, linttest) and
	// _test.go files manage lifecycles through t.Cleanup-style helpers;
	// the convention targets production code.
	if strings.HasSuffix(pass.Pkg.Name(), "test") {
		return nil, nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.File(file.Pos()).Name(), "_test.go") {
			continue
		}
		checkFile(pass, file)
	}
	return nil, nil
}

// isEvaluator reports whether t's method set is Evaluator-shaped:
// Run, Stream, Stats and Close() error. Structural matching keeps the
// analyzer honest on any backend — including ones internal/lint has
// never seen — without importing the engine package.
func isEvaluator(t types.Type) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(t)
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		if _, ok := t.Underlying().(*types.Interface); !ok {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	need := map[string]bool{"Run": false, "Stream": false, "Stats": false, "Close": false}
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if _, ok := need[m.Name()]; ok {
			need[m.Name()] = true
		}
		if m.Name() == "Close" {
			sig, ok := m.Type().(*types.Signature)
			if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
				return false
			}
			named, ok := sig.Results().At(0).Type().(*types.Named)
			if !ok || named.Obj().Name() != "error" {
				return false
			}
		}
	}
	for _, have := range need {
		if !have {
			return false
		}
	}
	return true
}

// evaluatorClose reports whether call is ev.Close() on an
// Evaluator-shaped receiver.
func evaluatorClose(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && isEvaluator(tv.Type)
}

// constructorCall returns the qualified name of the evaluator
// constructor call, if call is one.
func constructorCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := analysis.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		obj = pass.TypesInfo.Defs[id]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	names := constructors[fn.Pkg().Path()]
	if names == nil || !names[fn.Name()] {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

func checkFile(pass *analysis.Pass, file *ast.File) {
	// Part 1: discarded Close results. A bare expression statement,
	// defer, or go statement throws the error away.
	ast.Inspect(file, func(n ast.Node) bool {
		var call *ast.CallExpr
		verb := ""
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call, verb = n.Call, "defer "
		case *ast.GoStmt:
			call, verb = n.Call, "go "
		default:
			return true
		}
		if call != nil && evaluatorClose(pass, call) {
			pass.Reportf(call.Pos(), "%sev.Close() discards the close error; handle it (assigning to _ is an explicit acknowledgement)", verb)
		}
		return true
	})

	// Part 2: constructed evaluators with no reachable Close.
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		checkFuncLeaks(pass, fd)
	}
}

// checkFuncLeaks flags evaluator constructions in fd whose results
// neither get closed nor escape the function. The ownership analysis is
// deliberately conservative: any use of the variable other than a
// method call on it — passing it along, returning it, storing it in a
// composite, capturing it in a closure — counts as an ownership
// transfer and suppresses the diagnostic.
func checkFuncLeaks(pass *analysis.Pass, fd *ast.FuncDecl) {
	type candidate struct {
		obj  types.Object
		name string // constructor, e.g. "engine.New"
		pos  ast.Node
	}
	var cands []candidate

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			// A constructor whose result is discarded outright leaks
			// unconditionally.
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, ok := constructorCall(pass, call); ok {
					pass.Reportf(call.Pos(), "result of %s is discarded; the evaluator is never closed", name)
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := constructorCall(pass, call)
			if !ok {
				return true
			}
			// The evaluator is whichever LHS ident is Evaluator-shaped
			// (multi-result constructors pair it with an error).
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || !isEvaluator(obj.Type()) {
					continue
				}
				cands = append(cands, candidate{obj: obj, name: name, pos: call})
			}
		}
		return true
	})

	if len(cands) == 0 {
		return
	}

	closed := make(map[types.Object]bool)
	escaped := make(map[types.Object]bool)
	tracked := make(map[types.Object]bool)
	for _, c := range cands {
		tracked[c.obj] = true
	}

	// Classify every use of each tracked variable by its ancestors.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && tracked[obj] {
				classifyUse(pass, id, stack, obj, closed, escaped)
			}
		}
		stack = append(stack, n)
		return true
	})

	for _, c := range cands {
		if !closed[c.obj] && !escaped[c.obj] {
			pass.Reportf(c.pos.Pos(), "evaluator from %s is never closed and never leaves %s; call Close (or defer a handled Close) on every path", c.name, fd.Name.Name)
		}
	}
}

// classifyUse decides whether one identifier use closes the evaluator
// or transfers its ownership. stack holds the ancestors, outermost
// first; the identifier's immediate parent is the last element.
func classifyUse(pass *analysis.Pass, id *ast.Ident, stack []ast.Node, obj types.Object, closed, escaped map[types.Object]bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.SelectorExpr:
			if parent.X != id {
				continue
			}
			// A method call on the evaluator: Close satisfies the
			// contract; Run/Stream/Stats are plain uses. A method
			// *value* (ev.Close passed elsewhere) escapes.
			if i+1 < len(stack) {
				continue // selector is not the outermost interesting node
			}
			if parent.Sel.Name == "Close" {
				closed[obj] = true
			}
			return
		case *ast.CallExpr:
			// id (or an expression containing it) in argument position
			// escapes; id as the receiver chain of Fun was handled by
			// the SelectorExpr case below it on the stack.
			if inExprs(parent.Args, id) {
				escaped[obj] = true
				return
			}
		case *ast.FuncLit:
			// Captured by a closure: whatever the closure does with it
			// (commonly the deferred handled Close) is out of scope for
			// a per-function analysis — treat as satisfied.
			closed[obj] = true
			return
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr, *ast.IndexExpr:
			escaped[obj] = true
			return
		case *ast.AssignStmt:
			// Re-assigned somewhere (field, map, another variable):
			// ownership moved.
			for _, rhs := range parent.Rhs {
				if containsIdent(rhs, id) {
					escaped[obj] = true
					return
				}
			}
			return
		case *ast.UnaryExpr, *ast.StarExpr, *ast.ParenExpr:
			continue
		}
	}
}

// inExprs reports whether id sits at any depth inside one of exprs.
func inExprs(exprs []ast.Expr, id *ast.Ident) bool {
	for _, e := range exprs {
		if containsIdent(e, id) {
			return true
		}
	}
	return false
}

func containsIdent(root ast.Expr, id *ast.Ident) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == id {
			found = true
		}
		return !found
	})
	return found
}
