// Package a exercises the closecheck rules: discarded Close errors and
// evaluators that are never closed.
package a

import (
	"context"
	"fmt"

	art9 "repro"
	"repro/internal/engine"
)

func DiscardedClose(e *engine.Engine) {
	defer e.Close() // want `defer ev\.Close\(\) discards the close error`
}

func GoClose(e *engine.Engine) {
	go e.Close() // want `go ev\.Close\(\) discards the close error`
}

func BareClose(e *engine.Engine) {
	e.Close() // want `ev\.Close\(\) discards the close error`
}

func NeverClosed(ctx context.Context) error {
	ev := engine.New(engine.Options{Workers: 2}) // want `evaluator from engine\.New is never closed`
	_, err := ev.Run(ctx, nil)
	return err
}

func DiscardedConstructor() {
	engine.New(engine.Options{}) // want `result of engine\.New is discarded`
}

func FacadeLeak(ctx context.Context) {
	ev, err := art9.New() // want `evaluator from art9\.New is never closed`
	if err != nil {
		return
	}
	_, _ = ev.Run(ctx, nil)
	fmt.Println("ran")
}
