// Package clean holds the sanctioned evaluator lifecycles; closecheck
// must stay silent here.
package clean

import (
	"context"
	"fmt"

	"repro/internal/engine"
)

func HandledClose(ctx context.Context) error {
	ev := engine.New(engine.Options{})
	defer func() {
		if cerr := ev.Close(); cerr != nil {
			fmt.Println("close:", cerr)
		}
	}()
	_, err := ev.Run(ctx, nil)
	return err
}

func ClosedDirectly() error {
	ev := engine.New(engine.Options{})
	return ev.Close()
}

// AcknowledgedDiscard assigns the close error to _, the explicit form
// of "I considered it".
func AcknowledgedDiscard(e *engine.Engine) {
	_ = e.Close()
}

// OwnershipTransfer returns the evaluator; Close is the caller's duty.
func OwnershipTransfer() *engine.Engine {
	return engine.New(engine.Options{})
}

// pool stores evaluators it constructs; storing transfers ownership to
// the struct's own lifecycle.
type pool struct{ members []*engine.Engine }

func (p *pool) grow() {
	p.members = append(p.members, engine.New(engine.Options{}))
}
