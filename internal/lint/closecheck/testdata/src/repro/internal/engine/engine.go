// Package engine is a fixture stub of repro/internal/engine: a
// constructor closecheck knows by name whose result is
// Evaluator-shaped (Run/Stream/Stats/Close).
package engine

import "context"

type (
	Job     struct{}
	Result  struct{}
	Stats   struct{}
	Options struct{ Workers int }
)

type Engine struct{}

func New(opts Options) *Engine { return &Engine{} }

func (e *Engine) Run(ctx context.Context, jobs []Job) ([]Result, error) { return nil, nil }
func (e *Engine) Stream(ctx context.Context, jobs <-chan Job) (<-chan Result, error) {
	return nil, nil
}
func (e *Engine) Stats() Stats { return Stats{} }
func (e *Engine) Close() error { return nil }
