// Package art9 is a fixture stub of the repro facade: New returns the
// Evaluator interface, the other shape closecheck must recognize.
package art9

import "context"

type (
	Job    struct{}
	Result struct{}
	Stats  struct{}
	Option func()
)

type Evaluator interface {
	Run(ctx context.Context, jobs []Job) ([]Result, error)
	Stream(ctx context.Context, jobs <-chan Job) (<-chan Result, error)
	Stats() Stats
	Close() error
}

func New(opts ...Option) (Evaluator, error) { return nil, nil }
