// Package ternary is a fixture stub of repro/internal/ternary: the
// Trit type and its legal constants. It is also a clean in-scope
// target — every constant here is in the balanced domain.
package ternary

// Trit is one balanced-ternary digit: -1, 0 or +1.
type Trit int8

const (
	Neg  Trit = -1
	Zero Trit = 0
	Pos  Trit = 1
)

// Word is a fixed vector of trits.
type Word [4]Trit

// Valid reports whether t is in the balanced domain.
func (t Trit) Valid() bool { return t >= Neg && t <= Pos }
