// Package sim exercises tritrange: constant Trit expressions outside
// the balanced domain, in each syntactic position the analyzer covers.
package sim

import "repro/internal/ternary"

// Bad is an out-of-range constant conversion.
var Bad = ternary.Trit(2) // want `constant 2 is outside the balanced-ternary trit domain`

// BadWord smuggles an out-of-range element into a composite literal.
var BadWord = ternary.Word{ternary.Neg, 3} // want `constant 3 is outside the balanced-ternary trit domain`

// BadNeg is out of range on the negative side; the unary minus and its
// literal are one diagnostic, reported at the outermost expression.
var BadNeg ternary.Trit = -2 // want `constant -2 is outside the balanced-ternary trit domain`

// Step stays silent: non-constant arithmetic is Trit.Valid's job at
// run time, not tritrange's.
func Step(t ternary.Trit) ternary.Trit {
	if t == ternary.Pos {
		return ternary.Neg
	}
	return t + 1
}
