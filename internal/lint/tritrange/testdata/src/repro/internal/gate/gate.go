// Package gate stays inside the trit domain; tritrange must be silent
// here.
package gate

import "repro/internal/ternary"

// Invert is constant-correct trit logic.
func Invert(t ternary.Trit) ternary.Trit {
	switch t {
	case ternary.Neg:
		return ternary.Pos
	case ternary.Pos:
		return ternary.Neg
	}
	return ternary.Zero
}

// Zeros builds a word from in-range constants only, spelled every way.
func Zeros() ternary.Word {
	return ternary.Word{ternary.Neg, 0, 1, -1}
}
