// Package tritrange enforces the balanced-ternary value domain: a
// ternary.Trit holds exactly −1, 0 or +1. Any constant expression of
// type Trit outside that range — a composite-literal element, an
// assignment, a conversion like Trit(2), a comparison operand — is a
// latent corruption of the trit domain that Valid() checks would only
// catch at run time, and that the packed-trit kernel work on the
// ROADMAP turns into silent bit-plane corruption.
package tritrange

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags constant Trit-typed expressions outside {-1, 0, +1}.
var Analyzer = &analysis.Analyzer{
	Name: "tritrange",
	Doc: "constant trit values must lie in the balanced-ternary domain {-1, 0, +1}\n\n" +
		"In the trit-domain packages (internal/ternary, internal/sim, internal/gate),\n" +
		"every constant expression of type ternary.Trit — literals in Word composites,\n" +
		"conversions, assignments, comparisons — must be −1, 0 or +1. Out-of-range\n" +
		"trits corrupt the balanced encoding silently; non-constant conversions are\n" +
		"the domain of Trit.Valid at run time and are not flagged.",
	Run: run,
}

// scopePrefixes are the packages whose trit arithmetic the invariant
// governs.
var scopePrefixes = []string{
	"repro/internal/ternary",
	"repro/internal/sim",
	"repro/internal/gate",
}

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	inScope := false
	for _, p := range scopePrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil, nil
	}
	trit := tritType(pass.Pkg)
	if trit == nil {
		return nil, nil
	}

	// Tests deliberately construct out-of-range trits to exercise
	// Valid() and the decode error paths; the domain invariant binds
	// non-test code.
	files := pass.Files[:0:0]
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.File(f.Pos()).Name(), "_test.go") {
			files = append(files, f)
		}
	}

	// Collect the outermost out-of-range constant Trit expressions:
	// in `-2`, both the unary expression and the literal 2 carry a
	// constant value, and one diagnostic is enough.
	flagged := make(map[ast.Expr]bool)
	sub := *pass
	sub.Files = files
	sub.WithStack(func(n ast.Node, stack []ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[expr]
		if !ok || tv.Value == nil || tv.Type == nil {
			return true
		}
		if !types.Identical(tv.Type, trit) || tv.Value.Kind() != constant.Int {
			return true
		}
		v, exact := constant.Int64Val(tv.Value)
		if exact && v >= -1 && v <= 1 {
			return true
		}
		for _, anc := range stack {
			if ae, ok := anc.(ast.Expr); ok && flagged[ae] {
				return false // already reported at an enclosing expression
			}
		}
		flagged[expr] = true
		pass.Reportf(expr.Pos(), "constant %s is outside the balanced-ternary trit domain {-1, 0, +1}", tv.Value.ExactString())
		return false
	})
	return nil, nil
}

// tritType finds the ternary.Trit named type as seen from pkg: the
// package's own Trit when linting internal/ternary itself, or the one
// reached through its import of internal/ternary.
func tritType(pkg *types.Package) types.Type {
	lookup := func(p *types.Package) types.Type {
		if obj, ok := p.Scope().Lookup("Trit").(*types.TypeName); ok {
			return obj.Type()
		}
		return nil
	}
	if strings.HasPrefix(pkg.Path(), "repro/internal/ternary") {
		if t := lookup(pkg); t != nil {
			return t
		}
	}
	for _, imp := range pkg.Imports() {
		if strings.HasPrefix(imp.Path(), "repro/internal/ternary") {
			if t := lookup(imp); t != nil {
				return t
			}
		}
	}
	return nil
}
