package tritrange_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/tritrange"
)

func TestTritRange(t *testing.T) {
	linttest.Run(t, tritrange.Analyzer,
		"repro/internal/ternary",
		"repro/internal/sim",
		"repro/internal/gate",
	)
}
