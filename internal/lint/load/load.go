// Package load turns package patterns into type-checked syntax trees
// using only the standard library: `go list -deps -json` supplies the
// build-system view (which files belong to a package under the current
// GOOS/GOARCH, in dependency order), and go/types checks everything
// from source. It is the loading layer under cmd/art9-lint and the
// linttest fixture harness — the role x/tools' go/packages plays for
// ordinary analysis drivers, which this container cannot vendor.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath  string
	Name     string
	Dir      string
	GoFiles  []string
	Standard bool

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// Errors holds type errors tolerated during checking (standard
	// library packages only; module packages fail the load instead).
	Errors []error
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Resolver loads and caches type-checked packages for one process. It
// is safe for concurrent use; all packages share one FileSet so
// positions compose across packages.
type Resolver struct {
	Fset *token.FileSet

	mu   sync.Mutex
	pkgs map[string]*Package
}

// NewResolver returns an empty resolver.
func NewResolver() *Resolver {
	return &Resolver{Fset: token.NewFileSet(), pkgs: make(map[string]*Package)}
}

// shared is the process-wide resolver used by test harnesses so the
// (expensive) standard-library closure is checked once per process.
var shared = NewResolver()

// Shared returns the process-wide resolver.
func Shared() *Resolver { return shared }

// goList runs `go list -deps -json` for patterns in dir and decodes the
// JSON stream. CGO is disabled so the pure-Go variants of the standard
// library are selected — source type-checking cannot follow import "C".
func goList(dir string, patterns ...string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Name,Dir,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load lists patterns relative to dir, type-checks the full dependency
// closure, and returns the packages the patterns matched (dependencies
// are cached but not returned). Module packages must type-check
// cleanly; standard-library oddities are tolerated and recorded.
func (r *Resolver) Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var targets []*Package
	// `go list -deps` emits dependencies before dependents, so one
	// in-order sweep has every import available when needed.
	for _, lp := range listed {
		if lp.Error != nil && lp.Name == "" {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		p, err := r.checkLocked(lp)
		if err != nil {
			return nil, err
		}
		if !lp.DepOnly {
			targets = append(targets, p)
		}
	}
	return targets, nil
}

// Ensure loads the package at import path (and its closure) if it is
// not cached yet, returning its type-checked form. Used by linttest to
// satisfy standard-library imports of fixture files.
func (r *Resolver) Ensure(path string) (*Package, error) {
	r.mu.Lock()
	if p, ok := r.pkgs[path]; ok {
		r.mu.Unlock()
		return p, nil
	}
	r.mu.Unlock()
	// Listing happens outside the lock; checkLocked re-tests the cache.
	listed, err := goList("", path)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, lp := range listed {
		if lp.Error != nil && lp.Name == "" {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if _, err := r.checkLocked(lp); err != nil {
			return nil, err
		}
	}
	p, ok := r.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("load: %s not resolved by go list", path)
	}
	return p, nil
}

// checkLocked parses and type-checks one listed package, reusing the
// cache. r.mu must be held.
func (r *Resolver) checkLocked(lp *listPackage) (*Package, error) {
	if p, ok := r.pkgs[lp.ImportPath]; ok {
		return p, nil
	}
	if lp.ImportPath == "unsafe" {
		p := &Package{PkgPath: "unsafe", Name: "unsafe", Standard: true, Fset: r.Fset, Types: types.Unsafe}
		r.pkgs["unsafe"] = p
		return p, nil
	}
	p := &Package{
		PkgPath:  lp.ImportPath,
		Name:     lp.Name,
		Dir:      lp.Dir,
		Standard: lp.Standard,
		Fset:     r.Fset,
	}
	for _, f := range lp.GoFiles {
		name := filepath.Join(lp.Dir, f)
		p.GoFiles = append(p.GoFiles, name)
		file, err := parser.ParseFile(r.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %v", lp.ImportPath, err)
		}
		p.Syntax = append(p.Syntax, file)
	}
	p.TypesInfo = NewInfo()
	conf := types.Config{
		Importer: (*cacheImporter)(r),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			p.Errors = append(p.Errors, err)
		},
	}
	tpkg, err := conf.Check(lp.ImportPath, r.Fset, p.Syntax, p.TypesInfo)
	// The standard library occasionally contains constructs go/types
	// cannot fully check from source (compiler intrinsics); analyzers
	// never look inside those packages, so partial type information is
	// acceptable there — but module packages must check cleanly.
	if !lp.Standard && len(p.Errors) > 0 {
		return nil, fmt.Errorf("load: %s: %v", lp.ImportPath, p.Errors[0])
	}
	if tpkg == nil {
		return nil, fmt.Errorf("load: %s: type-checking produced no package: %v", lp.ImportPath, err)
	}
	p.Types = tpkg
	r.pkgs[lp.ImportPath] = p
	return p, nil
}

// cacheImporter resolves imports against the resolver's cache. The
// standard library's vendored dependencies are listed under a vendor/
// prefix but imported without one, hence the fallback.
type cacheImporter Resolver

func (c *cacheImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := c.pkgs[path]; ok {
		return p.Types, nil
	}
	if p, ok := c.pkgs["vendor/"+path]; ok {
		return p.Types, nil
	}
	return nil, fmt.Errorf("load: import %q not in dependency closure", path)
}

// NewInfo returns a fully populated types.Info ready for Check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Export of the gc importer for the vettool (unitchecker) mode of
// cmd/art9-lint: vet hands the tool compiled export data for every
// import, so no source checking happens there.
func GCImporter(fset *token.FileSet, packageFile map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}
