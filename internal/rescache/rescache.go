// Package rescache is the fleet-wide result cache: a content-addressed
// key/value store for finished job rows, shared between the dispatch
// path of every evaluator front (engine, balancer, autoscaler) and the
// /v1/cache wire tier that serve instances expose to their peers.
//
// The package is deliberately a leaf: keys are opaque strings (the
// caller hashes its content-addressed identity with KeyOf) and values
// are opaque bytes (internal/bench owns the row codec), so rescache
// imports nothing above the standard library and every layer of the
// stack can depend on it without cycles.
//
// Two stores compose into the per-process tier:
//
//   - LRU — a bounded in-process store with byte and entry accounting.
//   - Tiered — local-first lookup over an LRU plus remote peers (the
//     /v1/cache clients from internal/remote), with a singleflight
//     guard so a thundering herd of identical misses turns into one
//     peer round-trip and one local fill.
package rescache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
)

// DefaultMaxBytes bounds an LRU store when the caller passes 0: large
// enough for tens of thousands of bench rows, small enough to be an
// afterthought next to a serve instance's working set.
const DefaultMaxBytes = 64 << 20

// DefaultMaxEntries bounds an LRU store's entry count when the caller
// passes 0 — a backstop against pathological tiny-value churn.
const DefaultMaxEntries = 65536

// Stats is a point-in-time snapshot of a cache tier. Local counters
// (Hits..Bytes) describe the in-process store; Peer counters describe
// the remote tier and stay zero for a bare LRU.
type Stats struct {
	// Hits and Misses count lookups answered and unanswered by the
	// tier as a whole: a Tiered store counts a peer-answered lookup
	// as one hit, not a local miss plus a peer hit.
	Hits   uint64
	Misses uint64
	// Puts counts stores accepted; Evictions counts entries dropped
	// to honour the byte or entry bound.
	Puts      uint64
	Evictions uint64
	// Entries and Bytes describe the resident local store; MaxBytes
	// is its configured bound.
	Entries  int
	Bytes    int64
	MaxBytes int64
	// PeerHits/PeerMisses count lookups that reached the remote tier;
	// PeerErrors counts transport failures (each degrades to a miss,
	// never an error — a dead peer means compute, not failure).
	PeerHits   uint64
	PeerMisses uint64
	PeerErrors uint64
	// Coalesced counts lookups that piggybacked on an identical
	// in-flight peer lookup instead of issuing their own.
	Coalesced uint64
}

// Cache is the contract every tier implements: Get/Put never fail (a
// broken tier degrades to a miss) and Stats is safe to call
// concurrently with either.
//
// Values are owned by the cache once Put and by the caller once
// returned from Get; neither side may mutate a slice after handing it
// over.
type Cache interface {
	Get(ctx context.Context, key string) ([]byte, bool)
	Put(ctx context.Context, key string, val []byte)
	Stats() Stats
}

// KeyOf derives a cache key from the parts of a content-addressed
// identity. Parts are length-prefixed before hashing so ("ab","c")
// and ("a","bc") cannot collide.
func KeyOf(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// entry is one resident LRU value; cost is its accounted size.
type entry struct {
	key  string
	val  []byte
	cost int64
}

// LRU is the bounded in-process store: a map over a recency list with
// byte and entry accounting, safe for concurrent use.
type LRU struct {
	mu         sync.Mutex
	m          map[string]*list.Element
	order      *list.List // front = most recently used
	maxBytes   int64
	maxEntries int
	bytes      int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	puts      atomic.Uint64
	evictions atomic.Uint64
}

// NewLRU builds a bounded store. maxBytes 0 selects DefaultMaxBytes
// and maxEntries 0 selects DefaultMaxEntries; negative values leave
// that dimension unbounded.
func NewLRU(maxBytes int64, maxEntries int) *LRU {
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	if maxEntries == 0 {
		maxEntries = DefaultMaxEntries
	}
	return &LRU{
		m:          make(map[string]*list.Element),
		order:      list.New(),
		maxBytes:   maxBytes,
		maxEntries: maxEntries,
	}
}

// Get returns the cached value and refreshes its recency.
func (c *LRU) Get(_ context.Context, key string) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.m[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	val := el.Value.(*entry).val
	c.mu.Unlock()
	c.hits.Add(1)
	return val, true
}

// Put stores val under key, replacing any previous value, then evicts
// from the cold end until the bounds hold again. A value larger than
// the whole byte bound is refused outright rather than flushing the
// store for one entry.
func (c *LRU) Put(_ context.Context, key string, val []byte) {
	cost := int64(len(key) + len(val))
	if c.maxBytes > 0 && cost > c.maxBytes {
		return
	}
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*entry)
		c.bytes += cost - e.cost
		e.val, e.cost = val, cost
		c.order.MoveToFront(el)
	} else {
		c.m[key] = c.order.PushFront(&entry{key: key, val: val, cost: cost})
		c.bytes += cost
	}
	for (c.maxBytes > 0 && c.bytes > c.maxBytes) ||
		(c.maxEntries > 0 && c.order.Len() > c.maxEntries) {
		el := c.order.Back()
		if el == nil || c.order.Len() == 1 {
			break // never evict the entry just stored
		}
		e := c.order.Remove(el).(*entry)
		delete(c.m, e.key)
		c.bytes -= e.cost
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	c.puts.Add(1)
}

// Stats snapshots the store's counters.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	entries, bytes := c.order.Len(), c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
		MaxBytes:  c.maxBytes,
	}
}

// flight is one in-progress peer lookup; waiters block on done and
// then read val/ok.
type flight struct {
	done chan struct{}
	val  []byte
	ok   bool
}

// Tiered is the per-process cache tier: a local store answered first,
// then each peer in order, with a peer hit filled back into the local
// store. Concurrent misses on the same key coalesce into a single
// peer lookup (the singleflight guard), so a thundering herd of
// identical jobs costs one round-trip.
type Tiered struct {
	local Cache
	peers []Cache

	mu      sync.Mutex
	flights map[string]*flight

	hits       atomic.Uint64
	misses     atomic.Uint64
	peerHits   atomic.Uint64
	peerMisses atomic.Uint64
	coalesced  atomic.Uint64
}

// NewTiered composes the local store and remote peers into one Cache.
// With no peers it is a counting wrapper over local, so callers get
// one Stats shape regardless of topology.
func NewTiered(local Cache, peers ...Cache) *Tiered {
	return &Tiered{
		local:   local,
		peers:   peers,
		flights: make(map[string]*flight),
	}
}

// Local returns the in-process store of the tier. The serve layer's
// /v1/cache endpoints answer from it directly — never through the
// tier — so two peers pointed at each other cannot loop a miss.
func (t *Tiered) Local() Cache { return t.local }

// Get answers from the local store, then from the peers; a peer hit
// is filled into the local store before returning so the next lookup
// stays in-process.
func (t *Tiered) Get(ctx context.Context, key string) ([]byte, bool) {
	if v, ok := t.local.Get(ctx, key); ok {
		t.hits.Add(1)
		return v, true
	}
	if len(t.peers) == 0 {
		t.misses.Add(1)
		return nil, false
	}
	v, ok := t.peerGet(ctx, key)
	if ok {
		t.hits.Add(1)
		return v, true
	}
	t.misses.Add(1)
	return nil, false
}

// peerGet performs the singleflight-guarded remote lookup: the first
// caller for a key queries the peers and fills the local store; every
// concurrent duplicate waits for that flight's answer.
func (t *Tiered) peerGet(ctx context.Context, key string) ([]byte, bool) {
	t.mu.Lock()
	if f, inflight := t.flights[key]; inflight {
		t.mu.Unlock()
		t.coalesced.Add(1)
		select {
		case <-f.done:
			return f.val, f.ok
		case <-ctx.Done():
			return nil, false
		}
	}
	f := &flight{done: make(chan struct{})}
	t.flights[key] = f
	t.mu.Unlock()

	for _, p := range t.peers {
		if v, ok := p.Get(ctx, key); ok {
			t.peerHits.Add(1)
			t.local.Put(ctx, key, v)
			f.val, f.ok = v, true
			break
		}
	}
	if !f.ok {
		t.peerMisses.Add(1)
	}

	t.mu.Lock()
	delete(t.flights, key)
	t.mu.Unlock()
	close(f.done)
	return f.val, f.ok
}

// Put fills the local store and fans the entry out to every peer,
// best-effort, so a row computed here answers the whole fleet's next
// lookup. The fan-out is detached from the caller's context: a job
// whose submitter has already moved on still deserves to seed the
// tier.
func (t *Tiered) Put(ctx context.Context, key string, val []byte) {
	t.local.Put(ctx, key, val)
	if len(t.peers) == 0 {
		return
	}
	fill := context.WithoutCancel(ctx)
	for _, p := range t.peers {
		p.Put(fill, key, val)
	}
}

// Stats merges the tier: its own hit/miss view, the local store's
// occupancy and eviction counters, and every peer's transport
// counters.
func (t *Tiered) Stats() Stats {
	st := t.local.Stats()
	st.Hits = t.hits.Load()
	st.Misses = t.misses.Load()
	st.PeerHits = t.peerHits.Load()
	st.PeerMisses = t.peerMisses.Load()
	st.Coalesced = t.coalesced.Load()
	for _, p := range t.peers {
		st.PeerErrors += p.Stats().PeerErrors
	}
	return st
}
