// Package rescache is the fleet-wide result cache: a content-addressed
// key/value store for finished job rows, shared between the dispatch
// path of every evaluator front (engine, balancer, autoscaler) and the
// /v1/cache wire tier that serve instances expose to their peers.
//
// The package is deliberately a leaf: keys are opaque strings (the
// caller hashes its content-addressed identity with KeyOf) and values
// are opaque bytes (internal/bench owns the row codec), so rescache
// imports nothing above the standard library and every layer of the
// stack can depend on it without cycles.
//
// Two stores compose into the per-process tier:
//
//   - LRU — a bounded in-process store with byte and entry accounting.
//   - Tiered — local-first lookup over an LRU plus remote peers (the
//     /v1/cache clients from internal/remote), with a singleflight
//     guard so a thundering herd of identical misses turns into one
//     peer round-trip and one local fill.
//
// A Tiered store carries an epoch — the fleet-wide invalidation
// generation. Hits and fills are only exchanged between members on the
// same epoch; a mismatch degrades to a miss (or a dropped fill), never
// an error, so bumping the epoch on part of a fleet empties the shared
// tier without any member poisoning another. Peer fills are
// write-behind: Put enqueues onto a bounded queue drained by one
// background worker in batches, and Close drains what is queued (with
// a deadline) so short-lived batch runs still seed their peers before
// exit.
package rescache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxBytes bounds an LRU store when the caller passes 0: large
// enough for tens of thousands of bench rows, small enough to be an
// afterthought next to a serve instance's working set.
const DefaultMaxBytes = 64 << 20

// DefaultMaxEntries bounds an LRU store's entry count when the caller
// passes 0 — a backstop against pathological tiny-value churn.
const DefaultMaxEntries = 65536

// Write-behind defaults for a Tiered store with peers. The queue bound
// is a backstop, not a throughput knob: under steady load the worker
// drains batches far faster than the dispatch path enqueues single
// rows, so a full queue means the peers are unreachable and dropping
// fills (they are an optimization) is the right degradation.
const (
	// DefaultFillQueue is the bounded queue's capacity in entries.
	DefaultFillQueue = 1024
	// DefaultFillBatch is the most entries one peer round carries.
	DefaultFillBatch = 64
	// DefaultDrainTimeout bounds how long Close waits for the worker
	// to deliver what is queued before cutting it off.
	DefaultDrainTimeout = 5 * time.Second
)

// Stats is a point-in-time snapshot of a cache tier. Local counters
// (Hits..Bytes) describe the in-process store; Peer counters describe
// the remote tier and stay zero for a bare LRU.
type Stats struct {
	// Hits and Misses count lookups answered and unanswered by the
	// tier as a whole: a Tiered store counts a peer-answered lookup
	// as one hit, not a local miss plus a peer hit.
	Hits   uint64
	Misses uint64
	// Puts counts stores accepted; Evictions counts entries dropped
	// to honour the byte or entry bound.
	Puts      uint64
	Evictions uint64
	// Entries and Bytes describe the resident local store; MaxBytes
	// is its configured bound.
	Entries  int
	Bytes    int64
	MaxBytes int64
	// PeerHits/PeerMisses count lookups that reached the remote tier;
	// PeerErrors counts transport failures (each degrades to a miss,
	// never an error — a dead peer means compute, not failure).
	PeerHits   uint64
	PeerMisses uint64
	PeerErrors uint64
	// Coalesced counts lookups that piggybacked on an identical
	// in-flight peer lookup instead of issuing their own.
	Coalesced uint64
	// Epoch is the tier's invalidation generation. Hits and fills are
	// only exchanged between fleet members on the same epoch; bumping
	// it makes every previously shared entry unreachable.
	Epoch uint64
	// FillQueue is the number of write-behind peer fills waiting in
	// the queue right now; FillsDropped counts fills discarded because
	// the queue was full or a drain was cut short.
	FillQueue    int
	FillsDropped uint64
	// EpochRejects counts hits and fills refused because the two sides
	// disagreed on the epoch — each degrades to a miss or a dropped
	// fill, never an error.
	EpochRejects uint64
	// Corrupt counts entries that failed to decode and were evicted by
	// the codec layer above the store (internal/bench); the store
	// itself never sets it.
	Corrupt uint64
}

// Cache is the contract every tier implements: Get/Put never fail (a
// broken tier degrades to a miss) and Stats is safe to call
// concurrently with either.
//
// Values are owned by the cache once Put and by the caller once
// returned from Get; neither side may mutate a slice after handing it
// over.
type Cache interface {
	Get(ctx context.Context, key string) ([]byte, bool)
	Put(ctx context.Context, key string, val []byte)
	Stats() Stats
}

// Entry is one key/value pair, the unit of a batched peer fill.
type Entry struct {
	Key string
	Val []byte
}

// Deleter is the optional ability to evict a single entry. The codec
// layer above the store (internal/bench) uses it to delete an entry
// whose bytes fail to decode, so a corrupt write costs one miss
// instead of re-failing on every lookup forever.
type Deleter interface {
	Delete(ctx context.Context, key string)
}

// BatchFiller is the optional ability to accept many fills in one
// call. The write-behind worker prefers it — one wire round per batch
// instead of one per entry — and falls back to Put per entry.
type BatchFiller interface {
	PutBatch(ctx context.Context, entries []Entry)
}

// Epoched is the optional ability to report a cache epoch. A Tiered
// store skips peers whose epoch differs from its own — both for
// lookups and for fills — counting each skip in Stats.EpochRejects.
type Epoched interface {
	Epoch() uint64
}

// KeyOf derives a cache key from the parts of a content-addressed
// identity. Parts are length-prefixed before hashing so ("ab","c")
// and ("a","bc") cannot collide.
func KeyOf(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// entry is one resident LRU value; cost is its accounted size.
type entry struct {
	key  string
	val  []byte
	cost int64
}

// LRU is the bounded in-process store: a map over a recency list with
// byte and entry accounting, safe for concurrent use.
type LRU struct {
	mu         sync.Mutex
	m          map[string]*list.Element
	order      *list.List // front = most recently used
	maxBytes   int64
	maxEntries int
	bytes      int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	puts      atomic.Uint64
	evictions atomic.Uint64
}

// NewLRU builds a bounded store. maxBytes 0 selects DefaultMaxBytes
// and maxEntries 0 selects DefaultMaxEntries; negative values leave
// that dimension unbounded.
func NewLRU(maxBytes int64, maxEntries int) *LRU {
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	if maxEntries == 0 {
		maxEntries = DefaultMaxEntries
	}
	return &LRU{
		m:          make(map[string]*list.Element),
		order:      list.New(),
		maxBytes:   maxBytes,
		maxEntries: maxEntries,
	}
}

// Get returns the cached value and refreshes its recency.
func (c *LRU) Get(_ context.Context, key string) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.m[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	val := el.Value.(*entry).val
	c.mu.Unlock()
	c.hits.Add(1)
	return val, true
}

// Put stores val under key, replacing any previous value, then evicts
// from the cold end until the bounds hold again. A value larger than
// the whole byte bound is refused outright rather than flushing the
// store for one entry.
func (c *LRU) Put(_ context.Context, key string, val []byte) {
	cost := int64(len(key) + len(val))
	if c.maxBytes > 0 && cost > c.maxBytes {
		return
	}
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*entry)
		c.bytes += cost - e.cost
		e.val, e.cost = val, cost
		c.order.MoveToFront(el)
	} else {
		c.m[key] = c.order.PushFront(&entry{key: key, val: val, cost: cost})
		c.bytes += cost
	}
	for (c.maxBytes > 0 && c.bytes > c.maxBytes) ||
		(c.maxEntries > 0 && c.order.Len() > c.maxEntries) {
		el := c.order.Back()
		if el == nil || c.order.Len() == 1 {
			break // never evict the entry just stored
		}
		e := c.order.Remove(el).(*entry)
		delete(c.m, e.key)
		c.bytes -= e.cost
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	c.puts.Add(1)
}

// Delete removes key from the store, if present. The eviction counter
// is untouched: Evictions counts entries dropped to honour the bounds,
// not deliberate removals.
func (c *LRU) Delete(_ context.Context, key string) {
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		e := c.order.Remove(el).(*entry)
		delete(c.m, e.key)
		c.bytes -= e.cost
	}
	c.mu.Unlock()
}

// Stats snapshots the store's counters.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	entries, bytes := c.order.Len(), c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
		MaxBytes:  c.maxBytes,
	}
}

// flight is one in-progress peer lookup; waiters block on done and
// then read val/ok.
type flight struct {
	done chan struct{}
	val  []byte
	ok   bool
}

// Tiered is the per-process cache tier: a local store answered first,
// then each peer in order, with a peer hit filled back into the local
// store. Concurrent misses on the same key coalesce into a single
// peer lookup (the singleflight guard), so a thundering herd of
// identical jobs costs one round-trip. Peer fills are write-behind
// (see TieredConfig); a tier with peers must be Closed to drain them.
type Tiered struct {
	local Cache
	peers []Cache
	epoch uint64

	mu      sync.Mutex
	flights map[string]*flight

	// Write-behind machinery; all nil/zero when the tier has no peers.
	fills        chan Entry
	fillMu       sync.RWMutex // guards fillsClosed against Put/Close races
	fillsClosed  bool
	fillBatch    int
	drainTimeout time.Duration
	workerDone   chan struct{}
	workerCancel context.CancelFunc
	closeOnce    sync.Once
	closeErr     error

	hits         atomic.Uint64
	misses       atomic.Uint64
	peerHits     atomic.Uint64
	peerMisses   atomic.Uint64
	coalesced    atomic.Uint64
	fillsDropped atomic.Uint64
	epochRejects atomic.Uint64
}

// TieredConfig configures a tier. The zero value of every optional
// field selects the package default.
type TieredConfig struct {
	Local Cache
	Peers []Cache
	// Epoch is the tier's invalidation generation. Peers implementing
	// Epoched are skipped (lookups and fills) when their epoch
	// differs; the wire layer additionally stamps it onto every
	// /v1/cache exchange.
	Epoch uint64
	// FillQueue bounds the write-behind queue in entries (0 →
	// DefaultFillQueue). When full, Put drops the peer fill — the
	// local store is always filled — and counts it.
	FillQueue int
	// FillBatch caps how many entries one peer round carries (0 →
	// DefaultFillBatch).
	FillBatch int
	// DrainTimeout bounds how long Close waits for queued fills to
	// reach the peers (0 → DefaultDrainTimeout).
	DrainTimeout time.Duration
}

// NewTiered composes the local store and remote peers into one Cache
// at epoch 0 with default write-behind bounds. With no peers it is a
// counting wrapper over local, so callers get one Stats shape
// regardless of topology.
func NewTiered(local Cache, peers ...Cache) *Tiered {
	return NewTieredWith(TieredConfig{Local: local, Peers: peers})
}

// NewTieredWith composes a tier from an explicit configuration. A tier
// with peers starts one background worker; Close it to drain and stop.
func NewTieredWith(cfg TieredConfig) *Tiered {
	t := &Tiered{
		local:        cfg.Local,
		peers:        cfg.Peers,
		epoch:        cfg.Epoch,
		flights:      make(map[string]*flight),
		fillBatch:    cfg.FillBatch,
		drainTimeout: cfg.DrainTimeout,
	}
	if t.fillBatch <= 0 {
		t.fillBatch = DefaultFillBatch
	}
	if t.drainTimeout <= 0 {
		t.drainTimeout = DefaultDrainTimeout
	}
	if len(t.peers) > 0 {
		queue := cfg.FillQueue
		if queue <= 0 {
			queue = DefaultFillQueue
		}
		t.fills = make(chan Entry, queue)
		t.workerDone = make(chan struct{})
		ctx, cancel := context.WithCancel(context.Background())
		t.workerCancel = cancel
		go t.fillWorker(ctx)
	}
	return t
}

// Epoch returns the tier's invalidation generation.
func (t *Tiered) Epoch() uint64 { return t.epoch }

// Delete forwards to the local store when it supports deletion. Peers
// are untouched: a corrupt local copy says nothing about theirs.
func (t *Tiered) Delete(ctx context.Context, key string) {
	if d, ok := t.local.(Deleter); ok {
		d.Delete(ctx, key)
	}
}

// Local returns the in-process store of the tier. The serve layer's
// /v1/cache endpoints answer from it directly — never through the
// tier — so two peers pointed at each other cannot loop a miss.
func (t *Tiered) Local() Cache { return t.local }

// Get answers from the local store, then from the peers; a peer hit
// is filled into the local store before returning so the next lookup
// stays in-process.
func (t *Tiered) Get(ctx context.Context, key string) ([]byte, bool) {
	if v, ok := t.local.Get(ctx, key); ok {
		t.hits.Add(1)
		return v, true
	}
	if len(t.peers) == 0 {
		t.misses.Add(1)
		return nil, false
	}
	v, ok := t.peerGet(ctx, key)
	if ok {
		t.hits.Add(1)
		return v, true
	}
	t.misses.Add(1)
	return nil, false
}

// peerGet performs the singleflight-guarded remote lookup: the first
// caller for a key queries the peers and fills the local store; every
// concurrent duplicate waits for that flight's answer.
func (t *Tiered) peerGet(ctx context.Context, key string) ([]byte, bool) {
	t.mu.Lock()
	if f, inflight := t.flights[key]; inflight {
		t.mu.Unlock()
		t.coalesced.Add(1)
		select {
		case <-f.done:
			return f.val, f.ok
		case <-ctx.Done():
			return nil, false
		}
	}
	f := &flight{done: make(chan struct{})}
	t.flights[key] = f
	t.mu.Unlock()

	for _, p := range t.peers {
		if ep, ok := p.(Epoched); ok && ep.Epoch() != t.epoch {
			t.epochRejects.Add(1)
			continue
		}
		if v, ok := p.Get(ctx, key); ok {
			t.peerHits.Add(1)
			t.local.Put(ctx, key, v)
			f.val, f.ok = v, true
			break
		}
	}
	if !f.ok {
		t.peerMisses.Add(1)
	}

	t.mu.Lock()
	delete(t.flights, key)
	t.mu.Unlock()
	close(f.done)
	return f.val, f.ok
}

// Put fills the local store, then enqueues the entry for the
// write-behind worker to fan out to the peers. The enqueue never
// blocks: a full queue drops the peer fill (the local fill always
// lands) and counts it in Stats.FillsDropped, so a dispatch path can
// never stall behind a slow peer. After Close the peer fill is
// silently dropped.
func (t *Tiered) Put(ctx context.Context, key string, val []byte) {
	t.local.Put(ctx, key, val)
	if t.fills == nil {
		return
	}
	t.fillMu.RLock()
	if !t.fillsClosed {
		select {
		case t.fills <- Entry{Key: key, Val: val}:
		default:
			t.fillsDropped.Add(1)
		}
	}
	t.fillMu.RUnlock()
}

// fillWorker is the single background goroutine behind the
// write-behind queue: it blocks for one entry, gathers whatever else
// is immediately available up to the batch bound, and flushes the
// batch to every peer. When Close closes the queue the worker keeps
// receiving until the buffer is empty — that is the drain — and then
// exits.
func (t *Tiered) fillWorker(ctx context.Context) {
	defer close(t.workerDone)
	for {
		e, ok := <-t.fills
		if !ok {
			return
		}
		batch := make([]Entry, 1, t.fillBatch)
		batch[0] = e
	gather:
		for len(batch) < t.fillBatch {
			select {
			case e, ok := <-t.fills:
				if !ok {
					t.flush(ctx, batch)
					return
				}
				batch = append(batch, e)
			default:
				break gather
			}
		}
		t.flush(ctx, batch)
	}
}

// flush delivers one batch to every peer: epoch-mismatched peers are
// skipped (counted per entry in EpochRejects), BatchFillers get the
// whole batch in one call, anything else gets one Put per entry. A
// cancelled ctx — the drain deadline firing — drops the batch instead
// of blocking Close behind unreachable peers.
func (t *Tiered) flush(ctx context.Context, batch []Entry) {
	if ctx.Err() != nil {
		t.fillsDropped.Add(uint64(len(batch)))
		return
	}
	for _, p := range t.peers {
		if ctx.Err() != nil {
			return
		}
		if ep, ok := p.(Epoched); ok && ep.Epoch() != t.epoch {
			t.epochRejects.Add(uint64(len(batch)))
			continue
		}
		if bf, ok := p.(BatchFiller); ok {
			bf.PutBatch(ctx, batch)
			continue
		}
		for _, e := range batch {
			if ctx.Err() != nil {
				return
			}
			p.Put(ctx, e.Key, e.Val)
		}
	}
}

// Close drains the write-behind queue and stops the worker. Queued
// fills are delivered to the peers before Close returns — the drain
// contract a short-lived batch run relies on to seed the fleet — up
// to the configured deadline; past it the remaining fills are dropped
// (and counted) and Close reports the cut-off. Close is idempotent
// and a tier without peers Closes trivially.
func (t *Tiered) Close() error {
	t.closeOnce.Do(func() {
		if t.fills == nil {
			return
		}
		t.fillMu.Lock()
		t.fillsClosed = true
		close(t.fills)
		t.fillMu.Unlock()
		timer := time.NewTimer(t.drainTimeout)
		defer timer.Stop()
		select {
		case <-t.workerDone:
		case <-timer.C:
			t.workerCancel()
			<-t.workerDone
			t.closeErr = fmt.Errorf("rescache: write-behind drain exceeded %v; queued peer fills dropped", t.drainTimeout)
		}
		t.workerCancel()
	})
	return t.closeErr
}

// Stats merges the tier: its own hit/miss view, the local store's
// occupancy and eviction counters, the write-behind queue state, and
// every peer's transport and epoch counters.
func (t *Tiered) Stats() Stats {
	st := t.local.Stats()
	st.Hits = t.hits.Load()
	st.Misses = t.misses.Load()
	st.PeerHits = t.peerHits.Load()
	st.PeerMisses = t.peerMisses.Load()
	st.Coalesced = t.coalesced.Load()
	st.Epoch = t.epoch
	if t.fills != nil {
		st.FillQueue = len(t.fills)
	}
	st.FillsDropped = t.fillsDropped.Load()
	st.EpochRejects = t.epochRejects.Load()
	for _, p := range t.peers {
		ps := p.Stats()
		st.PeerErrors += ps.PeerErrors
		st.EpochRejects += ps.EpochRejects
	}
	return st
}
