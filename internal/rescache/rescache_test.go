package rescache

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeyOfBoundaries(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("length-prefixed parts must not collide across boundaries")
	}
	if KeyOf("x") != KeyOf("x") {
		t.Fatal("KeyOf must be deterministic")
	}
}

func TestLRUHitMissAndStats(t *testing.T) {
	ctx := context.Background()
	c := NewLRU(0, 0)
	if _, ok := c.Get(ctx, "k"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(ctx, "k", []byte("v"))
	v, ok := c.Get(ctx, "k")
	if !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v; want v, true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != int64(len("k")+len("v")) {
		t.Fatalf("bytes = %d", st.Bytes)
	}
	if st.MaxBytes != DefaultMaxBytes {
		t.Fatalf("maxBytes = %d, want default", st.MaxBytes)
	}
}

func TestLRUEvictsColdEntriesByBytes(t *testing.T) {
	ctx := context.Background()
	c := NewLRU(64, -1)
	for i := 0; i < 8; i++ {
		c.Put(ctx, fmt.Sprintf("key-%d", i), make([]byte, 10))
	}
	st := c.Stats()
	if st.Bytes > 64 {
		t.Fatalf("bytes = %d exceeds bound", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under byte pressure")
	}
	// The most recent entry must survive; the coldest must be gone.
	if _, ok := c.Get(ctx, "key-7"); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.Get(ctx, "key-0"); ok {
		t.Fatal("coldest entry survived")
	}
}

func TestLRUEvictsByEntryCountAndRecency(t *testing.T) {
	ctx := context.Background()
	c := NewLRU(-1, 2)
	c.Put(ctx, "a", []byte("1"))
	c.Put(ctx, "b", []byte("2"))
	c.Get(ctx, "a") // refresh a: b is now coldest
	c.Put(ctx, "c", []byte("3"))
	if _, ok := c.Get(ctx, "b"); ok {
		t.Fatal("coldest entry b survived")
	}
	if _, ok := c.Get(ctx, "a"); !ok {
		t.Fatal("refreshed entry a evicted")
	}
	if st := c.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUOversizedValueRefused(t *testing.T) {
	ctx := context.Background()
	c := NewLRU(8, 0)
	c.Put(ctx, "big", make([]byte, 64))
	if st := c.Stats(); st.Entries != 0 || st.Puts != 0 {
		t.Fatalf("oversized value was stored: %+v", st)
	}
	// A value that fits exactly is kept even though it is the only one.
	c.Put(ctx, "k", make([]byte, 7))
	if _, ok := c.Get(ctx, "k"); !ok {
		t.Fatal("exact-fit value refused")
	}
}

func TestLRUReplaceAdjustsBytes(t *testing.T) {
	ctx := context.Background()
	c := NewLRU(0, 0)
	c.Put(ctx, "k", make([]byte, 100))
	c.Put(ctx, "k", make([]byte, 10))
	if st := c.Stats(); st.Entries != 1 || st.Bytes != int64(len("k")+10) {
		t.Fatalf("stats after replace = %+v", st)
	}
}

// countingCache records Get calls so tests can observe coalescing, and
// can be gated to hold lookups open.
type countingCache struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets atomic.Int64
	gate chan struct{} // when non-nil, Get blocks until closed
	errs uint64
}

func newCountingCache() *countingCache {
	return &countingCache{m: map[string][]byte{}}
}

func (c *countingCache) Get(ctx context.Context, key string) ([]byte, bool) {
	c.gets.Add(1)
	if c.gate != nil {
		<-c.gate
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *countingCache) Put(ctx context.Context, key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = val
}

func (c *countingCache) Stats() Stats { return Stats{PeerErrors: c.errs} }

// get reads the backing map under the lock — for asserting on fills
// delivered by the write-behind worker.
func (c *countingCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func TestTieredPeerHitFillsLocal(t *testing.T) {
	ctx := context.Background()
	peer := newCountingCache()
	peer.Put(ctx, "k", []byte("v"))
	local := NewLRU(0, 0)
	tier := NewTiered(local, peer)

	v, ok := tier.Get(ctx, "k")
	if !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := local.Get(ctx, "k"); !ok {
		t.Fatal("peer hit not filled into local store")
	}
	st := tier.Stats()
	if st.Hits != 1 || st.PeerHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Second lookup answers locally: no extra peer round-trip.
	tier.Get(ctx, "k")
	if got := peer.gets.Load(); got != 1 {
		t.Fatalf("peer gets = %d, want 1", got)
	}
}

func TestTieredMissCountsOnce(t *testing.T) {
	ctx := context.Background()
	tier := NewTiered(NewLRU(0, 0), newCountingCache())
	if _, ok := tier.Get(ctx, "absent"); ok {
		t.Fatal("hit on absent key")
	}
	st := tier.Stats()
	if st.Hits != 0 || st.Misses != 1 || st.PeerMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTieredPutFansOutToPeers(t *testing.T) {
	// Peer fills are write-behind: the contract is that they have
	// landed once Close's drain returns, not synchronously with Put.
	ctx := context.Background()
	p1, p2 := newCountingCache(), newCountingCache()
	tier := NewTiered(NewLRU(0, 0), p1, p2)
	tier.Put(ctx, "k", []byte("v"))
	if err := tier.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, p := range []*countingCache{p1, p2} {
		if v, ok := p.get("k"); !ok || string(v) != "v" {
			t.Fatalf("peer %d not filled after drain", i+1)
		}
	}
	if err := tier.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Put after Close must not panic; the peer fill is dropped.
	tier.Put(ctx, "late", []byte("x"))
	if _, ok := p1.get("late"); ok {
		t.Fatal("fill delivered after Close")
	}
}

func TestTieredSingleflightCoalesces(t *testing.T) {
	ctx := context.Background()
	peer := newCountingCache()
	peer.m["k"] = []byte("v")
	peer.gate = make(chan struct{})
	tier := NewTiered(NewLRU(0, 0), peer)

	const n = 8
	var wg sync.WaitGroup
	results := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = tier.Get(ctx, "k")
		}(i)
	}
	// Wait until one flight holds the gated peer and every other
	// lookup has registered as a waiter, then release the gate.
	for peer.gets.Load() == 0 || tier.Stats().Coalesced != n-1 {
		runtime.Gosched()
	}
	close(peer.gate)
	wg.Wait()

	for i, ok := range results {
		if !ok {
			t.Fatalf("lookup %d missed", i)
		}
	}
	if got := peer.gets.Load(); got != 1 {
		t.Fatalf("peer gets = %d, want 1 (singleflight)", got)
	}
	if st := tier.Stats(); st.Coalesced == 0 {
		t.Fatalf("no coalesced lookups recorded: %+v", st)
	}
}

func TestTieredStatsSumsPeerErrors(t *testing.T) {
	p1, p2 := newCountingCache(), newCountingCache()
	p1.errs, p2.errs = 2, 3
	tier := NewTiered(NewLRU(0, 0), p1, p2)
	if st := tier.Stats(); st.PeerErrors != 5 {
		t.Fatalf("peer errors = %d, want 5", st.PeerErrors)
	}
}

func TestLRUDelete(t *testing.T) {
	ctx := context.Background()
	c := NewLRU(0, 0)
	c.Put(ctx, "k", []byte("v"))
	c.Delete(ctx, "k")
	if _, ok := c.Get(ctx, "k"); ok {
		t.Fatal("deleted entry still present")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 || st.Evictions != 0 {
		t.Fatalf("stats after delete = %+v", st)
	}
	c.Delete(ctx, "absent") // must be a no-op, not a panic
}

// epochedCache wraps countingCache with a fixed epoch, standing in for
// a /v1/cache client whose server runs a different generation.
type epochedCache struct {
	*countingCache
	epoch uint64
}

func (c *epochedCache) Epoch() uint64 { return c.epoch }

func TestTieredSkipsEpochMismatchedPeers(t *testing.T) {
	ctx := context.Background()
	stale := &epochedCache{countingCache: newCountingCache(), epoch: 1}
	stale.m["k"] = []byte("stale")
	fresh := &epochedCache{countingCache: newCountingCache(), epoch: 2}
	fresh.m["k"] = []byte("fresh")
	tier := NewTieredWith(TieredConfig{
		Local: NewLRU(0, 0),
		Peers: []Cache{stale, fresh},
		Epoch: 2,
	})
	defer tier.Close()

	v, ok := tier.Get(ctx, "k")
	if !ok || string(v) != "fresh" {
		t.Fatalf("Get = %q, %v; want fresh hit past the stale peer", v, ok)
	}
	if stale.gets.Load() != 0 {
		t.Fatal("epoch-mismatched peer was queried")
	}
	if st := tier.Stats(); st.EpochRejects == 0 || st.Epoch != 2 {
		t.Fatalf("stats = %+v; want EpochRejects > 0, Epoch 2", st)
	}

	// Fills skip the mismatched peer too.
	tier.Put(ctx, "new", []byte("v"))
	if err := tier.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, ok := stale.get("new"); ok {
		t.Fatal("fill delivered to epoch-mismatched peer")
	}
	if _, ok := fresh.get("new"); !ok {
		t.Fatal("fill not delivered to same-epoch peer")
	}
}

// batchCache records PutBatch calls to prove the worker prefers the
// batched path over per-entry Puts.
type batchCache struct {
	*countingCache
	batches atomic.Int64
	puts    atomic.Int64
}

func (c *batchCache) Put(ctx context.Context, key string, val []byte) {
	c.puts.Add(1)
	c.countingCache.Put(ctx, key, val)
}

func (c *batchCache) PutBatch(ctx context.Context, entries []Entry) {
	c.batches.Add(1)
	for _, e := range entries {
		c.countingCache.Put(ctx, e.Key, e.Val)
	}
}

func TestTieredFillWorkerBatches(t *testing.T) {
	ctx := context.Background()
	peer := &batchCache{countingCache: newCountingCache()}
	tier := NewTiered(NewLRU(0, 0), peer)
	const n = 32
	for i := 0; i < n; i++ {
		tier.Put(ctx, fmt.Sprintf("k%d", i), []byte("v"))
	}
	if err := tier.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i := 0; i < n; i++ {
		if _, ok := peer.get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("entry k%d not delivered", i)
		}
	}
	if peer.puts.Load() != 0 {
		t.Fatalf("worker used %d per-entry Puts on a BatchFiller", peer.puts.Load())
	}
	if b := peer.batches.Load(); b < 1 || b > n {
		t.Fatalf("batches = %d", b)
	}
}

func TestTieredFullQueueDropsNotBlocks(t *testing.T) {
	ctx := context.Background()
	// Hold the worker inside a peer Put so the queue stays occupied.
	blocking := &gatedPutCache{countingCache: newCountingCache(), gate: make(chan struct{})}
	tier := NewTieredWith(TieredConfig{
		Local:     NewLRU(0, 0),
		Peers:     []Cache{blocking},
		FillQueue: 1,
		FillBatch: 1,
	})
	// First put: worker picks it up and blocks in the peer's Put.
	tier.Put(ctx, "a", []byte("1"))
	for blocking.started.Load() == 0 {
		runtime.Gosched()
	}
	// Second put fills the 1-slot queue; third must drop, not block.
	tier.Put(ctx, "b", []byte("2"))
	tier.Put(ctx, "c", []byte("3"))
	if st := tier.Stats(); st.FillsDropped == 0 {
		t.Fatalf("expected a dropped fill, stats = %+v", st)
	}
	close(blocking.gate)
	if err := tier.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// gatedPutCache blocks Put until its gate closes, standing in for an
// unreachable peer the write-behind worker is stuck on.
type gatedPutCache struct {
	*countingCache
	gate    chan struct{}
	started atomic.Int64
}

func (c *gatedPutCache) Put(ctx context.Context, key string, val []byte) {
	c.started.Add(1)
	select {
	case <-c.gate:
	case <-ctx.Done():
		return
	}
	c.countingCache.Put(ctx, key, val)
}

func TestTieredCloseDrainDeadline(t *testing.T) {
	ctx := context.Background()
	stuck := &gatedPutCache{countingCache: newCountingCache(), gate: make(chan struct{})}
	defer close(stuck.gate)
	tier := NewTieredWith(TieredConfig{
		Local:        NewLRU(0, 0),
		Peers:        []Cache{stuck},
		FillBatch:    1,
		DrainTimeout: 50 * time.Millisecond,
	})
	tier.Put(ctx, "a", []byte("1"))
	tier.Put(ctx, "b", []byte("2"))
	done := make(chan error, 1)
	go func() { done <- tier.Close() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Close returned nil despite a stuck peer; want drain-deadline error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked past the drain deadline")
	}
	if st := tier.Stats(); st.FillsDropped == 0 {
		t.Fatalf("cut-off drain recorded no dropped fills: %+v", st)
	}
}
