package rescache

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKeyOfBoundaries(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("length-prefixed parts must not collide across boundaries")
	}
	if KeyOf("x") != KeyOf("x") {
		t.Fatal("KeyOf must be deterministic")
	}
}

func TestLRUHitMissAndStats(t *testing.T) {
	ctx := context.Background()
	c := NewLRU(0, 0)
	if _, ok := c.Get(ctx, "k"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(ctx, "k", []byte("v"))
	v, ok := c.Get(ctx, "k")
	if !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v; want v, true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != int64(len("k")+len("v")) {
		t.Fatalf("bytes = %d", st.Bytes)
	}
	if st.MaxBytes != DefaultMaxBytes {
		t.Fatalf("maxBytes = %d, want default", st.MaxBytes)
	}
}

func TestLRUEvictsColdEntriesByBytes(t *testing.T) {
	ctx := context.Background()
	c := NewLRU(64, -1)
	for i := 0; i < 8; i++ {
		c.Put(ctx, fmt.Sprintf("key-%d", i), make([]byte, 10))
	}
	st := c.Stats()
	if st.Bytes > 64 {
		t.Fatalf("bytes = %d exceeds bound", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under byte pressure")
	}
	// The most recent entry must survive; the coldest must be gone.
	if _, ok := c.Get(ctx, "key-7"); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.Get(ctx, "key-0"); ok {
		t.Fatal("coldest entry survived")
	}
}

func TestLRUEvictsByEntryCountAndRecency(t *testing.T) {
	ctx := context.Background()
	c := NewLRU(-1, 2)
	c.Put(ctx, "a", []byte("1"))
	c.Put(ctx, "b", []byte("2"))
	c.Get(ctx, "a") // refresh a: b is now coldest
	c.Put(ctx, "c", []byte("3"))
	if _, ok := c.Get(ctx, "b"); ok {
		t.Fatal("coldest entry b survived")
	}
	if _, ok := c.Get(ctx, "a"); !ok {
		t.Fatal("refreshed entry a evicted")
	}
	if st := c.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUOversizedValueRefused(t *testing.T) {
	ctx := context.Background()
	c := NewLRU(8, 0)
	c.Put(ctx, "big", make([]byte, 64))
	if st := c.Stats(); st.Entries != 0 || st.Puts != 0 {
		t.Fatalf("oversized value was stored: %+v", st)
	}
	// A value that fits exactly is kept even though it is the only one.
	c.Put(ctx, "k", make([]byte, 7))
	if _, ok := c.Get(ctx, "k"); !ok {
		t.Fatal("exact-fit value refused")
	}
}

func TestLRUReplaceAdjustsBytes(t *testing.T) {
	ctx := context.Background()
	c := NewLRU(0, 0)
	c.Put(ctx, "k", make([]byte, 100))
	c.Put(ctx, "k", make([]byte, 10))
	if st := c.Stats(); st.Entries != 1 || st.Bytes != int64(len("k")+10) {
		t.Fatalf("stats after replace = %+v", st)
	}
}

// countingCache records Get calls so tests can observe coalescing, and
// can be gated to hold lookups open.
type countingCache struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets atomic.Int64
	gate chan struct{} // when non-nil, Get blocks until closed
	errs uint64
}

func newCountingCache() *countingCache {
	return &countingCache{m: map[string][]byte{}}
}

func (c *countingCache) Get(ctx context.Context, key string) ([]byte, bool) {
	c.gets.Add(1)
	if c.gate != nil {
		<-c.gate
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *countingCache) Put(ctx context.Context, key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = val
}

func (c *countingCache) Stats() Stats { return Stats{PeerErrors: c.errs} }

func TestTieredPeerHitFillsLocal(t *testing.T) {
	ctx := context.Background()
	peer := newCountingCache()
	peer.Put(ctx, "k", []byte("v"))
	local := NewLRU(0, 0)
	tier := NewTiered(local, peer)

	v, ok := tier.Get(ctx, "k")
	if !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := local.Get(ctx, "k"); !ok {
		t.Fatal("peer hit not filled into local store")
	}
	st := tier.Stats()
	if st.Hits != 1 || st.PeerHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Second lookup answers locally: no extra peer round-trip.
	tier.Get(ctx, "k")
	if got := peer.gets.Load(); got != 1 {
		t.Fatalf("peer gets = %d, want 1", got)
	}
}

func TestTieredMissCountsOnce(t *testing.T) {
	ctx := context.Background()
	tier := NewTiered(NewLRU(0, 0), newCountingCache())
	if _, ok := tier.Get(ctx, "absent"); ok {
		t.Fatal("hit on absent key")
	}
	st := tier.Stats()
	if st.Hits != 0 || st.Misses != 1 || st.PeerMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTieredPutFansOutToPeers(t *testing.T) {
	ctx := context.Background()
	p1, p2 := newCountingCache(), newCountingCache()
	tier := NewTiered(NewLRU(0, 0), p1, p2)
	tier.Put(ctx, "k", []byte("v"))
	for i, p := range []*countingCache{p1, p2} {
		if v, ok := p.m["k"]; !ok || string(v) != "v" {
			t.Fatalf("peer %d not filled", i+1)
		}
	}
}

func TestTieredSingleflightCoalesces(t *testing.T) {
	ctx := context.Background()
	peer := newCountingCache()
	peer.m["k"] = []byte("v")
	peer.gate = make(chan struct{})
	tier := NewTiered(NewLRU(0, 0), peer)

	const n = 8
	var wg sync.WaitGroup
	results := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = tier.Get(ctx, "k")
		}(i)
	}
	// Wait until one flight holds the gated peer and every other
	// lookup has registered as a waiter, then release the gate.
	for peer.gets.Load() == 0 || tier.Stats().Coalesced != n-1 {
		runtime.Gosched()
	}
	close(peer.gate)
	wg.Wait()

	for i, ok := range results {
		if !ok {
			t.Fatalf("lookup %d missed", i)
		}
	}
	if got := peer.gets.Load(); got != 1 {
		t.Fatalf("peer gets = %d, want 1 (singleflight)", got)
	}
	if st := tier.Stats(); st.Coalesced == 0 {
		t.Fatalf("no coalesced lookups recorded: %+v", st)
	}
}

func TestTieredStatsSumsPeerErrors(t *testing.T) {
	p1, p2 := newCountingCache(), newCountingCache()
	p1.errs, p2.errs = 2, 3
	tier := NewTiered(NewLRU(0, 0), p1, p2)
	if st := tier.Stats(); st.PeerErrors != 5 {
		t.Fatalf("peer errors = %d, want 5", st.PeerErrors)
	}
}
