// Facade tests for the concurrent batch-evaluation surface: the engine
// re-exports, New-built evaluators, and the SuiteJobs batch.
package art9_test

import (
	"context"
	"testing"
	"time"

	art9 "repro"
)

// TestFacadeSuiteRun drives the §V-A suite through a New-built
// evaluator and checks every workload's concurrent outcome against the
// serial runner.
func TestFacadeSuiteRun(t *testing.T) {
	ev, err := art9.New()
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()

	results, err := ev.Run(context.Background(), art9.SuiteJobs())
	if err != nil {
		t.Fatal(err)
	}
	all := map[string]*art9.Outcome{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("workload %s: %v", r.ID, r.Err)
		}
		o, ok := r.Value.(*art9.Outcome)
		if !ok {
			t.Fatalf("workload %s: value %T, want *Outcome", r.ID, r.Value)
		}
		all[r.ID] = o
	}
	for _, w := range art9.Benchmarks() {
		o, ok := all[w.Name]
		if !ok {
			t.Fatalf("suite result missing workload %s", w.Name)
		}
		serial, err := art9.RunBenchmark(w)
		if err != nil {
			t.Fatal(err)
		}
		if o.Checksum != serial.Checksum || o.ART9Cycles != serial.ART9Cycles {
			t.Errorf("%s: concurrent (checksum %d, cycles %d) != serial (checksum %d, cycles %d)",
				w.Name, o.Checksum, o.ART9Cycles, serial.Checksum, serial.ART9Cycles)
		}
	}
}

// TestFacadeEngine runs the suite batch on a bare local Engine — every
// Evaluator accepts the same jobs — then submits a custom closure job
// on the engine's own channel API.
func TestFacadeEngine(t *testing.T) {
	eng := art9.NewEngine(art9.EngineOptions{Workers: 2, JobTimeout: time.Minute})
	defer eng.Close()

	jobs := art9.SuiteJobs()
	results, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(art9.Benchmarks()) {
		t.Fatalf("suite returned %d results, want %d", len(results), len(art9.Benchmarks()))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("workload %s: %v", r.ID, r.Err)
		}
	}
	if s := eng.Stats(); s.Completed != uint64(len(results)) {
		t.Errorf("engine stats %+v, want %d completed", s, len(results))
	}

	r := <-eng.Submit(context.Background(), art9.EngineJob{
		ID: "custom",
		Fn: func(context.Context) (any, error) { return 7, nil },
	})
	if r.Err != nil || r.Value.(int) != 7 {
		t.Fatalf("custom engine job result %+v", r)
	}
}

// TestFacadeSuiteStream consumes the suite as a completion-order stream
// and checks it yields exactly one successful *Outcome per workload.
func TestFacadeSuiteStream(t *testing.T) {
	ev, err := art9.New(art9.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()

	seen := map[string]bool{}
	for r := range ev.Stream(context.Background(), art9.SuiteJobs()) {
		if r.Err != nil {
			t.Fatalf("workload %s: %v", r.ID, r.Err)
		}
		if _, ok := r.Value.(*art9.Outcome); !ok {
			t.Fatalf("workload %s: value %T, want *Outcome", r.ID, r.Value)
		}
		seen[r.ID] = true
	}
	if len(seen) != len(art9.Benchmarks()) {
		t.Fatalf("stream yielded %d workloads, want %d", len(seen), len(art9.Benchmarks()))
	}
}

// TestFacadeShardSet builds a sharded evaluator through New and checks
// submission-order results and summed stats across the shards.
func TestFacadeShardSet(t *testing.T) {
	ev, err := art9.New(art9.WithShards(2), art9.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	if _, ok := ev.(*art9.ShardSet); !ok {
		t.Fatalf("New(WithShards(2)) = %T, want *ShardSet", ev)
	}

	jobs := []art9.EngineJob{
		{ID: "a", Fn: func(context.Context) (any, error) { return 1, nil }},
		{ID: "b", Fn: func(context.Context) (any, error) { return 2, nil }},
		{ID: "c", Fn: func(context.Context) (any, error) { return 3, nil }},
	}
	results, err := ev.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Value.(int) != i+1 {
			t.Errorf("result %d = %+v, want value %d", i, r, i+1)
		}
	}
	if tot := ev.Stats(); tot.Submitted != 3 {
		t.Errorf("Stats %+v, want 3 submitted", tot)
	}
}
