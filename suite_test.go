// Facade tests for the concurrent batch-evaluation surface: the engine
// re-exports and the one-call suite runner.
package art9_test

import (
	"context"
	"testing"
	"time"

	art9 "repro"
)

func TestFacadeRunSuite(t *testing.T) {
	all, err := art9.RunSuite(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range art9.Benchmarks() {
		o, ok := all[w.Name]
		if !ok {
			t.Fatalf("suite result missing workload %s", w.Name)
		}
		serial, err := art9.RunBenchmark(w)
		if err != nil {
			t.Fatal(err)
		}
		if o.Checksum != serial.Checksum || o.ART9Cycles != serial.ART9Cycles {
			t.Errorf("%s: concurrent (checksum %d, cycles %d) != serial (checksum %d, cycles %d)",
				w.Name, o.Checksum, o.ART9Cycles, serial.Checksum, serial.ART9Cycles)
		}
	}
}

func TestFacadeEngine(t *testing.T) {
	eng := art9.NewEngine(art9.EngineOptions{Workers: 2, JobTimeout: time.Minute})
	defer eng.Close()

	all, err := art9.RunSuiteOn(context.Background(), eng)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(art9.Benchmarks()) {
		t.Fatalf("suite returned %d outcomes, want %d", len(all), len(art9.Benchmarks()))
	}
	if s := eng.Stats(); s.Completed != uint64(len(all)) {
		t.Errorf("engine stats %+v, want %d completed", s, len(all))
	}

	r := <-eng.Submit(context.Background(), art9.EngineJob{
		ID: "custom",
		Fn: func(context.Context) (any, error) { return 7, nil },
	})
	if r.Err != nil || r.Value.(int) != 7 {
		t.Fatalf("custom engine job result %+v", r)
	}
}

func TestFacadeStreamSuite(t *testing.T) {
	eng := art9.NewEngine(art9.EngineOptions{Workers: 2})
	defer eng.Close()

	seen := map[string]bool{}
	for r := range art9.StreamSuite(context.Background(), eng) {
		if r.Err != nil {
			t.Fatalf("workload %s: %v", r.ID, r.Err)
		}
		if _, ok := r.Value.(*art9.Outcome); !ok {
			t.Fatalf("workload %s: value %T, want *Outcome", r.ID, r.Value)
		}
		seen[r.ID] = true
	}
	if len(seen) != len(art9.Benchmarks()) {
		t.Fatalf("stream yielded %d workloads, want %d", len(seen), len(art9.Benchmarks()))
	}
}

func TestFacadeShardSet(t *testing.T) {
	set := art9.NewShardSet(2, art9.EngineOptions{Workers: 1})
	defer set.Close()

	jobs := []art9.EngineJob{
		{ID: "a", Fn: func(context.Context) (any, error) { return 1, nil }},
		{ID: "b", Fn: func(context.Context) (any, error) { return 2, nil }},
		{ID: "c", Fn: func(context.Context) (any, error) { return 3, nil }},
	}
	results, err := set.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Value.(int) != i+1 {
			t.Errorf("result %d = %+v, want value %d", i, r, i+1)
		}
	}
	if tot := set.Stats(); tot.Submitted != 3 {
		t.Errorf("Stats %+v, want 3 submitted", tot)
	}
}
