// Facade tests for the concurrent batch-evaluation surface: the engine
// re-exports and the one-call suite runner.
package art9_test

import (
	"context"
	"testing"
	"time"

	art9 "repro"
)

func TestFacadeRunSuite(t *testing.T) {
	all, err := art9.RunSuite(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range art9.Benchmarks() {
		o, ok := all[w.Name]
		if !ok {
			t.Fatalf("suite result missing workload %s", w.Name)
		}
		serial, err := art9.RunBenchmark(w)
		if err != nil {
			t.Fatal(err)
		}
		if o.Checksum != serial.Checksum || o.ART9Cycles != serial.ART9Cycles {
			t.Errorf("%s: concurrent (checksum %d, cycles %d) != serial (checksum %d, cycles %d)",
				w.Name, o.Checksum, o.ART9Cycles, serial.Checksum, serial.ART9Cycles)
		}
	}
}

func TestFacadeEngine(t *testing.T) {
	eng := art9.NewEngine(art9.EngineOptions{Workers: 2, JobTimeout: time.Minute})
	defer eng.Close()

	all, err := art9.RunSuiteOn(context.Background(), eng)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(art9.Benchmarks()) {
		t.Fatalf("suite returned %d outcomes, want %d", len(all), len(art9.Benchmarks()))
	}
	if s := eng.Stats(); s.Completed != uint64(len(all)) {
		t.Errorf("engine stats %+v, want %d completed", s, len(all))
	}

	r := <-eng.Submit(context.Background(), art9.EngineJob{
		ID: "custom",
		Fn: func(context.Context) (any, error) { return 7, nil },
	})
	if r.Err != nil || r.Value.(int) != 7 {
		t.Fatalf("custom engine job result %+v", r)
	}
}
