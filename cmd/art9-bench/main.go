// Command art9-bench regenerates the evaluation artifacts of the paper:
// Fig. 5 (benchmark memory cells) and Tables II–V, by running the §V-A
// benchmark suite on every core model.
//
// Usage:
//
//	art9-bench                 # all tables and the figure
//	art9-bench -table fig5     # one artifact: fig5, 2, 3, 4 or 5
//	art9-bench -run gemm       # one workload with detailed metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/xlate"
)

func main() {
	table := flag.String("table", "", "one artifact: fig5, 2, 3, 4, 5")
	run := flag.String("run", "", "run one workload with detail")
	diag := flag.Bool("diag", false, "with -run: show translation diagnostics")
	flag.Parse()

	switch {
	case *run != "":
		w, ok := bench.ByName(*run)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *run))
		}
		o, err := bench.Run(w, xlate.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("workload          %s — %s\n", w.Name, w.Description)
		fmt.Printf("checksum          %d (verified on all three cores)\n", o.Checksum)
		fmt.Printf("RV32 static       %d instructions (%d bits)\n", o.RVInsts, o.RVBits)
		fmt.Printf("ART-9 static      %d instructions (%d trits)\n", o.ARTInsts, o.ARTTrits)
		fmt.Printf("ARMv6-M estimate  %d bits\n", o.ARMBits)
		fmt.Printf("redundancy removed %d instructions\n", o.Removed)
		fmt.Printf("ART-9 cycles      %d (retired %d, load stalls %d, squashes %d)\n",
			o.ART9Cycles, o.ARTRetired, o.ARTStallsLoad, o.ARTStallsBranch)
		fmt.Printf("VexRiscv cycles   %d\n", o.VexCycles)
		fmt.Printf("PicoRV32 cycles   %d\n", o.PicoCycles)
		if *diag {
			for _, d := range o.Diagnostics {
				fmt.Println("diag:", d)
			}
		}
	case *table == "":
		s, err := bench.AllTables()
		if err != nil {
			fatal(err)
		}
		fmt.Print(s)
	default:
		all, err := bench.RunAll()
		if err != nil {
			fatal(err)
		}
		var s string
		switch *table {
		case "fig5":
			_, s = bench.Fig5(all)
		case "2":
			_, s = bench.Table2(all["dhrystone"])
		case "3":
			_, s = bench.Table3(all)
		case "4":
			_, s = bench.Table4(all["dhrystone"])
		case "5":
			_, s = bench.Table5(all["dhrystone"])
		default:
			fatal(fmt.Errorf("unknown table %q", *table))
		}
		fmt.Print(s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "art9-bench:", err)
	os.Exit(1)
}
