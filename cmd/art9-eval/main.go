// Command art9-eval runs the hardware-level evaluation framework of the
// paper (§III-B): cycle-accurate simulation of an ART-9 program plus
// gate-level analysis of the core against a design-technology description,
// combined by the performance estimator into implementation-aware metrics.
//
// Usage:
//
//	art9-eval [-tech cntfet|fpga] [-freq MHz] [-iters N] [-mem words] prog.t9s
//	art9-eval -netlist [-tech cntfet|fpga]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/gate"
)

func main() {
	techName := flag.String("tech", "cntfet", "technology: cntfet or fpga")
	freq := flag.Float64("freq", 0, "operating frequency in MHz (0: fmax)")
	iters := flag.Int("iters", 1, "benchmark iterations for per-iteration metrics")
	memWords := flag.Int("mem", 0, "TIM/TDM words for the memory power model")
	netlist := flag.Bool("netlist", false, "print the gate-level analysis only")
	flag.Parse()

	var tech *gate.Technology
	switch *techName {
	case "cntfet":
		tech = gate.CNTFET32()
	case "fpga":
		tech = gate.StratixVEmulation()
		if *freq == 0 {
			*freq = 150
		}
		if *memWords == 0 {
			*memWords = 256
		}
	default:
		fatal(fmt.Errorf("unknown technology %q", *techName))
	}

	if *netlist {
		an := gate.Analyze(gate.BuildART9(), tech)
		fmt.Print(an.String())
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: art9-eval [-tech cntfet|fpga] prog.t9s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	hw := &core.HardwareFramework{Tech: tech, FreqMHz: *freq, MemWords: *memWords}
	ev, err := hw.Evaluate(prog, nil, *iters)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("technology        %s\n", ev.Impl.Tech)
	fmt.Printf("ternary gates     %d\n", ev.Impl.Gates)
	fmt.Printf("critical path     %.0f ps (fmax %.1f MHz)\n",
		ev.Analysis.CriticalPathPs, ev.Analysis.FmaxMHz)
	fmt.Printf("operating freq    %.1f MHz\n", ev.Impl.FreqMHz)
	if ev.Impl.ALMs > 0 {
		fmt.Printf("ALMs              %d\n", ev.Impl.ALMs)
		fmt.Printf("registers         %d\n", ev.Impl.Registers)
		fmt.Printf("RAM               %d bits\n", ev.Impl.RAMBits)
	}
	fmt.Printf("cycles            %d (%d retired, CPI %.3f)\n",
		ev.Cycles.Cycles, ev.Cycles.Retired, ev.Cycles.CPI())
	fmt.Printf("power             %.6g W\n", ev.Impl.PowerW)
	fmt.Printf("DMIPS             %.3f\n", ev.Impl.DMIPS)
	fmt.Printf("DMIPS/W           %.4g\n", ev.Impl.DMIPSPerW)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "art9-eval:", err)
	os.Exit(1)
}
