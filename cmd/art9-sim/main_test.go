package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain re-execs the test binary as the CLI itself when the marker
// env var is set, so the golden tests drive the real main() — flag
// parsing, file I/O, exit paths — in a child process, exactly as a
// user would. Regenerate goldens with:
//
//	go run ./cmd/art9-sim cmd/art9-sim/testdata/sum.t9s > cmd/art9-sim/testdata/sum.stats.golden
func TestMain(m *testing.M) {
	if os.Getenv("ART9_SIM_CLI") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "ART9_SIM_CLI=1")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("art9-sim %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, string(want))
	}
}

// TestPipelineStats pins the cycle-accurate core's statistics for the
// sum-1..10 program: cycles, CPI, and squash counts are part of the
// paper-reproduction surface, so a drift here is a finding, not noise.
func TestPipelineStats(t *testing.T) {
	golden(t, "sum.stats.golden", runCLI(t, filepath.Join("testdata", "sum.t9s")))
}

// TestImageMode loads the art9-asm-encoded TIM image of the same
// program and must land on identical statistics — the image round-trip
// may not change the architecture.
func TestImageMode(t *testing.T) {
	golden(t, "sum.stats.golden", runCLI(t, "-image", filepath.Join("testdata", "sum.tim")))
}

// TestCoresAgreeOnRegisters runs both cores with -regs and compares the
// final register files: the pipelined core must retire to the same
// architectural state as the functional reference.
func TestCoresAgreeOnRegisters(t *testing.T) {
	regsOf := func(out string) []string {
		var regs []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "T") {
				regs = append(regs, line)
			}
		}
		return regs
	}
	src := filepath.Join("testdata", "sum.t9s")
	pipe := regsOf(runCLI(t, "-regs", src))
	funcl := regsOf(runCLI(t, "-func", "-regs", src))
	if len(pipe) != 9 || len(funcl) != 9 {
		t.Fatalf("expected 9 register lines, got %d (pipeline) and %d (functional)", len(pipe), len(funcl))
	}
	for i := range pipe {
		if pipe[i] != funcl[i] {
			t.Errorf("register file diverges:\n  pipeline:   %s\n  functional: %s", pipe[i], funcl[i])
		}
	}
	if !strings.Contains(pipe[1], "= 55") && !strings.Contains(pipe[1], "    55") {
		t.Errorf("T1 should hold sum(1..10) = 55, got %q", pipe[1])
	}
}
