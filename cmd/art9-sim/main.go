// Command art9-sim runs ART-9 programs on the cycle-accurate simulator.
//
// Usage:
//
//	art9-sim [-func] [-trace] [-regs] prog.t9s
//	art9-sim -image prog.tim
//
// By default the source is assembled and run on the 5-stage pipelined
// core; -func selects the functional reference core; -image loads an
// encoded TIM image produced by art9-asm. The run statistics (cycles,
// retired instructions, stalls) are printed on exit; -regs additionally
// dumps the register file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/sim"
	"repro/internal/ternary"
)

func main() {
	useFunc := flag.Bool("func", false, "use the functional reference core")
	trace := flag.Bool("trace", false, "print a per-cycle pipeline trace")
	regs := flag.Bool("regs", false, "dump the register file on exit")
	image := flag.Bool("image", false, "input is an encoded TIM image")
	maxSteps := flag.Int("max", 0, "step budget (0: default)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: art9-sim [-func] [-trace] [-regs] prog.t9s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var prog *asm.Program
	if *image {
		prog, err = loadImage(string(src))
	} else {
		prog, err = asm.Assemble(string(src))
	}
	if err != nil {
		fatal(err)
	}

	cfg := sim.Config{MaxSteps: *maxSteps}
	var (
		res   sim.Result
		state *sim.State
	)
	if *useFunc {
		f := sim.NewFunctional(cfg)
		if err := f.S.Load(prog); err != nil {
			fatal(err)
		}
		res, err = f.Run()
		state = f.S
	} else {
		p := sim.NewPipeline(cfg)
		if *trace {
			p.Trace = func(cycle uint64, line string) {
				fmt.Printf("%6d %s\n", cycle, line)
			}
		}
		if err := p.S.Load(prog); err != nil {
			fatal(err)
		}
		res, err = p.Run()
		state = p.S
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("halted at PC %d\n", res.HaltPC)
	fmt.Printf("cycles            %d\n", res.Cycles)
	fmt.Printf("retired           %d (CPI %.3f)\n", res.Retired, res.CPI())
	fmt.Printf("load-use stalls   %d\n", res.StallsLoad)
	fmt.Printf("branch squashes   %d\n", res.StallsBranch)
	fmt.Printf("branches          %d taken / %d not taken\n", res.Taken, res.NotTaken)
	fmt.Printf("memory            %d loads / %d stores\n", res.Loads, res.Stores)
	if *regs {
		for r := 0; r < 9; r++ {
			w := state.TRF[r]
			fmt.Printf("T%d = %6d  (%v)\n", r, w.Int(), w)
		}
	}
}

// loadImage parses the art9-asm image format: one ternary word per line
// plus optional ".tdm addr word" data lines.
func loadImage(s string) (*asm.Program, error) {
	p := &asm.Program{Data: map[int]ternary.Word{}, Symbols: map[string]int{}}
	for ln, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, ".tdm") {
			f := strings.Fields(line)
			if len(f) != 3 {
				return nil, fmt.Errorf("line %d: bad .tdm line", ln+1)
			}
			addr, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			w, err := ternary.ParseWord(f[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			p.Data[addr] = w
			continue
		}
		w, err := ternary.ParseWord(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		p.Words = append(p.Words, w)
	}
	return p, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "art9-sim:", err)
	os.Exit(1)
}
