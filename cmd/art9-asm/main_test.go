package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestMain re-execs the test binary as the CLI itself when the marker
// env var is set, so the golden tests drive the real main() in a child
// process. Regenerate goldens with:
//
//	go run ./cmd/art9-asm cmd/art9-asm/testdata/sum.t9s > cmd/art9-asm/testdata/sum.tim.golden
//	go run ./cmd/art9-asm -list cmd/art9-asm/testdata/sum.t9s > cmd/art9-asm/testdata/sum.list.golden
func TestMain(m *testing.M) {
	if os.Getenv("ART9_ASM_CLI") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "ART9_ASM_CLI=1")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("art9-asm %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, string(want))
	}
}

// TestImageGolden pins the encoded TIM image, including the .tdm data
// lines in ascending address order — the image must be byte-stable
// across runs for content-addressed caching and diffable goldens.
func TestImageGolden(t *testing.T) {
	golden(t, "sum.tim.golden", runCLI(t, filepath.Join("testdata", "sum.t9s")))
}

// TestImageDeterministic assembles twice and requires identical bytes;
// this is the regression test for the map-ordered .tdm emission.
func TestImageDeterministic(t *testing.T) {
	src := filepath.Join("testdata", "sum.t9s")
	if a, b := runCLI(t, src), runCLI(t, src); a != b {
		t.Errorf("two assemblies of the same source differ:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// TestListingGolden pins the -list disassembly view.
func TestListingGolden(t *testing.T) {
	golden(t, "sum.list.golden", runCLI(t, "-list", filepath.Join("testdata", "sum.t9s")))
}

// TestOutputFile checks -o writes the same bytes as stdout mode.
func TestOutputFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sum.tim")
	runCLI(t, "-o", out, filepath.Join("testdata", "sum.t9s"))
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "sum.tim.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("-o output differs from stdout golden")
	}
}
