// Command art9-asm assembles ART-9 ternary assembly into a TIM image.
//
// Usage:
//
//	art9-asm [-o out.tim] [-list] prog.t9s
//
// The output format is one 9-trit word per line in T/0/1 notation (MST
// first), loadable by art9-sim. With -list, an address/word/disassembly
// listing is printed instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/asm"
)

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	list := flag.Bool("list", false, "print a listing instead of the image")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: art9-asm [-o out.tim] [-list] prog.t9s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	var b strings.Builder
	if *list {
		b.WriteString(asm.Disassemble(p.Words))
		fmt.Fprintf(&b, "; %d instructions, %d ternary memory cells\n",
			len(p.Text), p.TextCells())
	} else {
		for _, w := range p.Words {
			b.WriteString(w.String())
			b.WriteByte('\n')
		}
		// Data section entries as directives for the simulator, in
		// address order so the image is byte-stable across runs.
		addrs := make([]int, 0, len(p.Data))
		for addr := range p.Data {
			addrs = append(addrs, addr)
		}
		sort.Ints(addrs)
		for _, addr := range addrs {
			fmt.Fprintf(&b, ".tdm %d %s\n", addr, p.Data[addr])
		}
	}
	if *out == "" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "art9-asm:", err)
	os.Exit(1)
}
