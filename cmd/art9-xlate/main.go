// Command art9-xlate runs the software-level compiling framework of the
// paper (§III-A): RV32 assembly in, ART-9 ternary assembly out, through
// instruction mapping, operand conversion / register renaming, and
// redundancy checking.
//
// Usage:
//
//	art9-xlate [-o out.t9s] [-diag] [-stats] [-no-peephole] [-no-inline-mul] prog.s
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ternary"
	"repro/internal/xlate"
)

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	diag := flag.Bool("diag", false, "print translation diagnostics")
	stats := flag.Bool("stats", false, "print size statistics")
	noPeep := flag.Bool("no-peephole", false, "disable redundancy checking")
	noMul := flag.Bool("no-inline-mul", false, "call the runtime multiplier instead of inlining")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: art9-xlate [-o out.t9s] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	f := &core.SoftwareFramework{Options: xlate.Options{
		NoPeephole:  *noPeep,
		NoInlineMul: *noMul,
	}}
	res, err := f.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Print(res.Ternary.Asm)
	} else if err := os.WriteFile(*out, []byte(res.Ternary.Asm), 0o644); err != nil {
		fatal(err)
	}
	if *diag {
		for _, d := range res.Ternary.Diagnostics {
			fmt.Fprintln(os.Stderr, "diag:", d)
		}
	}
	if *stats {
		rvBits := res.Binary.TextBits()
		trits := res.Program.TextCells()
		fmt.Fprintf(os.Stderr, "RV32 instructions   %d (%d bits)\n",
			len(res.Binary.Insts), rvBits)
		fmt.Fprintf(os.Stderr, "ART-9 instructions  %d (%d trits)\n",
			len(res.Program.Text), trits)
		fmt.Fprintf(os.Stderr, "cell reduction      %.0f%%\n",
			100*(1-float64(trits)/float64(rvBits)))
		fmt.Fprintf(os.Stderr, "redundancy removed  %d instructions\n",
			res.Ternary.Removed)
		_ = ternary.WordTrits
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "art9-xlate:", err)
	os.Exit(1)
}
