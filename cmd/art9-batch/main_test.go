package main

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/remote"
)

// fakePeers renders n placeholder peer URLs — validation only counts
// them, so the hosts never resolve.
func fakePeers(n int) []string {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = "http://peer.invalid:9009"
	}
	return urls
}

// TestValidateFleetFlags pins the CLI flag-validation contract: failover
// tuning flags without -failover are an error naming the flags (never a
// silent no-op), autoscale tuning without -autoscale-max likewise,
// -failover over a single backend warns, and well-formed topologies
// pass clean. Every hard error wraps engine.ErrInvalidOptions — the
// same typed error art9.New returns for the library spelling.
func TestValidateFleetFlags(t *testing.T) {
	tests := []struct {
		name     string
		cfg      remote.BackendConfig
		wantErr  string
		wantWarn string
	}{
		{name: "default run is clean"},
		{name: "chunk without failover", cfg: remote.BackendConfig{Chunk: 8}, wantErr: "-chunk"},
		{name: "max-retries without failover", cfg: remote.BackendConfig{MaxRetries: 3}, wantErr: "-max-retries"},
		{name: "health-interval without failover", cfg: remote.BackendConfig{HealthInterval: time.Second},
			wantErr: "-health-interval"},
		{name: "all orphans named together",
			cfg:     remote.BackendConfig{Chunk: 8, MaxRetries: 3, HealthInterval: time.Second},
			wantErr: "-chunk, -max-retries, -health-interval"},
		{name: "negative chunk rejected",
			cfg:     remote.BackendConfig{Failover: true, Chunk: -1, Peers: fakePeers(2)},
			wantErr: "-chunk must be >= 0"},
		{name: "failover with nothing to fail over to",
			cfg: remote.BackendConfig{Failover: true}, wantWarn: "single backend"},
		{name: "failover with one explicit shard",
			cfg: remote.BackendConfig{Failover: true, Shards: 1}, wantWarn: "single backend"},
		{name: "failover across peers", cfg: remote.BackendConfig{Failover: true, Peers: fakePeers(2)}},
		{name: "failover across local shards", cfg: remote.BackendConfig{Failover: true, Shards: 2}},
		{name: "chunked failover fleet",
			cfg: remote.BackendConfig{Failover: true, Chunk: 16, MaxRetries: 1, Peers: fakePeers(2)}},
		{name: "negative tuning values still need failover",
			cfg:     remote.BackendConfig{MaxRetries: -1, HealthInterval: -1},
			wantErr: "-max-retries, -health-interval"},
		{name: "elastic pool", cfg: remote.BackendConfig{AutoscaleMin: 1, AutoscaleMax: 4}},
		{name: "elastic pool with standbys",
			cfg: remote.BackendConfig{AutoscaleMax: 2, StandbyPeers: fakePeers(1)}},
		{name: "autoscale bounds inverted",
			cfg:     remote.BackendConfig{AutoscaleMin: 4, AutoscaleMax: 2},
			wantErr: "bounds inverted"},
		{name: "negative autoscale bound",
			cfg:     remote.BackendConfig{AutoscaleMin: -1, AutoscaleMax: 2},
			wantErr: "-autoscale-min"},
		{name: "standby peers without autoscale",
			cfg:     remote.BackendConfig{StandbyPeers: fakePeers(1)},
			wantErr: "-standby-peers"},
		{name: "scale tuning without autoscale",
			cfg:     remote.BackendConfig{ScaleUpThreshold: 0.9, ScaleCooldown: time.Second},
			wantErr: "-scale-up/-scale-down, -scale-cooldown"},
		{name: "autoscale mixed with failover",
			cfg:     remote.BackendConfig{Failover: true, AutoscaleMax: 4, Peers: fakePeers(2)},
			wantErr: "-failover"},
		{name: "autoscale mixed with fixed shards",
			cfg:     remote.BackendConfig{Shards: 2, AutoscaleMax: 4},
			wantErr: "-shards"},
		{name: "autoscale mixed with fixed peers",
			cfg:     remote.BackendConfig{Peers: fakePeers(1), AutoscaleMax: 4},
			wantErr: "-standby-peers"},
		{name: "hysteresis gap inverted",
			cfg:     remote.BackendConfig{AutoscaleMax: 4, ScaleUpThreshold: 0.3, ScaleDownThreshold: 0.6},
			wantErr: "hysteresis needs a gap"},
		{name: "threshold out of range",
			cfg:     remote.BackendConfig{AutoscaleMax: 4, ScaleUpThreshold: 1.5},
			wantErr: "-scale-up"},
		{name: "fixed elastic pool warns",
			cfg: remote.BackendConfig{AutoscaleMin: 2, AutoscaleMax: 2}, wantWarn: "nothing will ever scale"},
		{name: "cache peers without cache",
			cfg:     remote.BackendConfig{CachePeers: fakePeers(1)},
			wantErr: "-cache-peers"},
		{name: "cache bound without cache",
			cfg:     remote.BackendConfig{CacheMaxBytes: 1 << 20},
			wantErr: "-cache-max-bytes"},
		{name: "negative cache bound",
			cfg:     remote.BackendConfig{Cache: true, CacheMaxBytes: -1},
			wantErr: "-cache-max-bytes must be >= 0"},
		{name: "cache epoch without cache",
			cfg:     remote.BackendConfig{CacheEpoch: 7},
			wantErr: "-cache-epoch"},
		{name: "cached fleet",
			cfg: remote.BackendConfig{Cache: true, CachePeers: fakePeers(2), CacheMaxBytes: 1 << 20}},
		{name: "cached fleet on a bumped epoch",
			cfg: remote.BackendConfig{Cache: true, CachePeers: fakePeers(2), CacheEpoch: 7}},
		{name: "cached failover fleet",
			cfg: remote.BackendConfig{Failover: true, Peers: fakePeers(2), Cache: true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			warn, err := validateFleetFlags(tt.cfg)
			if tt.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tt.wantErr)
				}
				if !errors.Is(err, engine.ErrInvalidOptions) {
					t.Fatalf("err = %v, want wrapping engine.ErrInvalidOptions", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if tt.wantWarn == "" && warn != "" {
				t.Fatalf("unexpected warning %q", warn)
			}
			if tt.wantWarn != "" && !strings.Contains(warn, tt.wantWarn) {
				t.Fatalf("warning %q, want containing %q", warn, tt.wantWarn)
			}
		})
	}
}
