package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateFleetFlags pins the CLI flag-validation contract: failover
// tuning flags without -failover are an error naming the flags (never a
// silent no-op), -failover over a single backend warns, and well-formed
// topologies pass clean.
func TestValidateFleetFlags(t *testing.T) {
	tests := []struct {
		name           string
		failover       bool
		chunk          int
		maxRetries     int
		healthInterval time.Duration
		shards, peers  int
		wantErr        string
		wantWarn       string
	}{
		{name: "default run is clean"},
		{name: "chunk without failover", chunk: 8, wantErr: "-chunk"},
		{name: "max-retries without failover", maxRetries: 3, wantErr: "-max-retries"},
		{name: "health-interval without failover", healthInterval: time.Second, wantErr: "-health-interval"},
		{name: "all orphans named together", chunk: 8, maxRetries: 3, healthInterval: time.Second,
			wantErr: "-chunk, -max-retries, -health-interval"},
		{name: "negative chunk rejected", failover: true, chunk: -1, peers: 2, wantErr: "-chunk must be >= 0"},
		{name: "failover with nothing to fail over to", failover: true, wantWarn: "single backend"},
		{name: "failover with one explicit shard", failover: true, shards: 1, wantWarn: "single backend"},
		{name: "failover across peers", failover: true, peers: 2},
		{name: "failover across local shards", failover: true, shards: 2},
		{name: "chunked failover fleet", failover: true, chunk: 16, maxRetries: 1, peers: 2},
		{name: "negative tuning values still need failover", maxRetries: -1, healthInterval: -1,
			wantErr: "-max-retries, -health-interval"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			warn, err := validateFleetFlags(tt.failover, tt.chunk, tt.maxRetries, tt.healthInterval, tt.shards, tt.peers)
			if tt.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if tt.wantWarn == "" && warn != "" {
				t.Fatalf("unexpected warning %q", warn)
			}
			if tt.wantWarn != "" && !strings.Contains(warn, tt.wantWarn) {
				t.Fatalf("warning %q, want containing %q", warn, tt.wantWarn)
			}
		})
	}
}
