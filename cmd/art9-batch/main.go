// Command art9-batch runs a manifest of benchmark programs concurrently
// through the evaluation engine and emits a JSON report — the format CI
// archives as BENCH_*.json to track the performance trajectory.
//
// Usage:
//
//	art9-batch                                   # example manifest, stdout
//	art9-batch -manifest suite.json -o out.json  # explicit in/out
//	art9-batch -workers 4 -timeout 30s           # pool size, per-job cap
//
// A manifest names jobs drawn from the built-in suite, inline RV32
// sources, or assembly files, plus the technologies to evaluate each
// job's cycle counts against:
//
//	{
//	  "technologies": ["cntfet32", "stratixv"],
//	  "jobs": [
//	    {"name": "bubble", "workload": "bubble"},
//	    {"name": "mine", "file": "prog.s", "iterations": 10}
//	  ]
//	}
//
// The manifest schema and per-job report rows are shared with the
// art9-serve HTTP endpoints (internal/bench), so a job renders the same
// whether it ran from this CLI or over the network.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/xlate"
)

func main() {
	manifest := flag.String("manifest", "examples/batch/manifest.json", "batch manifest (JSON)")
	out := flag.String("o", "-", "report destination (- for stdout)")
	workers := flag.Int("workers", 0, "worker-pool size (0: GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-job timeout (0: none)")
	compact := flag.Bool("compact", false, "emit the report without indentation")
	flag.Parse()

	m, err := bench.LoadManifest(*manifest)
	if err != nil {
		fatal(err)
	}
	techs, err := m.ResolveTechnologies()
	if err != nil {
		fatal(err)
	}
	jobs, err := m.EngineJobs(filepath.Dir(*manifest), xlate.Options{})
	if err != nil {
		fatal(err)
	}

	eng := engine.New(engine.Options{Workers: *workers, JobTimeout: *timeout})
	defer eng.Close()

	start := time.Now()
	results, _ := eng.RunAll(context.Background(), jobs)
	wall := time.Since(start)

	rep := bench.Report{
		Schema:  "art9-batch/v1",
		Created: time.Now().UTC().Format(time.RFC3339),
		Workers: eng.Workers(),
		WallMS:  float64(wall.Microseconds()) / 1e3,
	}
	for _, r := range results {
		jr := bench.JobReportOf(r, techs)
		if !jr.OK {
			rep.Failures++
		}
		rep.Jobs = append(rep.Jobs, jr)
	}
	rep.Cache = bench.CacheReportOf(eng)
	rep.Engine = bench.EngineReportOf(eng)

	if err := emit(*out, rep, !*compact); err != nil {
		fatal(err)
	}
	if rep.Failures > 0 {
		fatal(fmt.Errorf("%d of %d jobs failed", rep.Failures, len(rep.Jobs)))
	}
}

func emit(dest string, rep bench.Report, indent bool) error {
	var raw []byte
	var err error
	if indent {
		raw, err = json.MarshalIndent(rep, "", "  ")
	} else {
		raw, err = json.Marshal(rep)
	}
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if dest == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(dest, raw, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "art9-batch:", err)
	os.Exit(1)
}
