// Command art9-batch runs a manifest of benchmark programs concurrently
// through an evaluation backend and emits a JSON report — the format CI
// archives as BENCH_*.json to track the performance trajectory.
//
// Usage:
//
//	art9-batch                                   # example manifest, stdout
//	art9-batch -manifest suite.json -o out.json  # explicit in/out
//	art9-batch -workers 4 -timeout 30s           # pool size, per-job cap
//	art9-batch -shards 4                         # 4 local engine shards
//	art9-batch -peers http://h1:9009,http://h2:9009
//	                                             # fan the manifest out across
//	                                             # remote art9-serve instances
//	                                             # (add -shards N to mix in
//	                                             # local pools)
//	art9-batch -failover -peers ...              # health-aware dispatch: jobs
//	                                             # on a dying peer are re-run
//	                                             # on surviving backends; the
//	                                             # report gains per-backend
//	                                             # failover counters
//	art9-batch -failover -chunk 32 -peers ...    # chunked dispatch: up to 32
//	                                             # jobs per backend travel as
//	                                             # one acknowledged suite
//	                                             # stream, sized by scraped
//	                                             # capacity; a severed chunk
//	                                             # re-runs only its
//	                                             # unresolved jobs
//	art9-batch -autoscale-min 1 -autoscale-max 4 # elastic pool: local shards
//	                                             # float between the bounds,
//	                                             # growing under queued load
//	                                             # and draining before every
//	                                             # shrink; the report gains
//	                                             # the scale-event log
//	art9-batch -autoscale-max 2 \
//	           -standby-peers http://h1:9009     # standby peers are dialed
//	                                             # only once the local bound
//	                                             # is exhausted
//	art9-batch -cache \
//	           -cache-peers http://h1:9009       # fleet-wide result cache:
//	                                             # jobs whose content-addressed
//	                                             # spec was already evaluated
//	                                             # (here or on a cache peer)
//	                                             # replay instead of running;
//	                                             # the report's cache.results
//	                                             # section counts hits
//
// A manifest names jobs drawn from the built-in suite, inline RV32
// sources, or assembly files, plus the technologies to evaluate each
// job's cycle counts against:
//
//	{
//	  "technologies": ["cntfet32", "stratixv"],
//	  "jobs": [
//	    {"name": "bubble", "workload": "bubble"},
//	    {"name": "mine", "file": "prog.s", "iterations": 10}
//	  ]
//	}
//
// File jobs are read locally and shipped to peers by content, never by
// path. The manifest schema and per-job report rows are shared with the
// art9-serve HTTP endpoints (internal/bench), so a job renders the same
// whether it ran from this CLI, over the network, or on a remote peer.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	art9 "repro"
	"repro/internal/bench"
	"repro/internal/remote"
	"repro/internal/xlate"
)

func main() {
	manifest := flag.String("manifest", "examples/batch/manifest.json", "batch manifest (JSON)")
	out := flag.String("o", "-", "report destination (- for stdout)")
	workers := flag.Int("workers", 0, "worker-pool size per local shard (0: GOMAXPROCS)")
	shards := flag.Int("shards", 0, "local engine shards (0: one, or none when -peers is set)")
	peers := flag.String("peers", "", "comma-separated base URLs of art9-serve instances to fan jobs out to")
	failover := flag.Bool("failover", false, "health-aware dispatch with job-level failover across the backends")
	healthInterval := flag.Duration("health-interval", 0, "failover health-probe period (0: 2s; negative: probes off)")
	maxRetries := flag.Int("max-retries", 0, "failover budget per job (0: 2; negative: no retries)")
	chunk := flag.Int("chunk", 0, "failover chunk size: dispatch up to N jobs per backend as one acknowledged suite stream (0: per-job)")
	autoscaleMin := flag.Int("autoscale-min", 0, "elastic pool floor: minimum local shards (0 with -autoscale-max: 1)")
	autoscaleMax := flag.Int("autoscale-max", 0, "elastic pool ceiling: maximum local shards (0: autoscaling off)")
	standbyPeers := flag.String("standby-peers", "", "comma-separated art9-serve base URLs dialed only when the elastic pool's local ceiling is exhausted")
	scaleUp := flag.Float64("scale-up", 0, "utilization at which the elastic pool grows (0: 0.8)")
	scaleDown := flag.Float64("scale-down", 0, "utilization below which the elastic pool shrinks (0: 0.25)")
	scaleCooldown := flag.Duration("scale-cooldown", 0, "minimum gap between scale events (0: 2s; negative: none)")
	scaleInterval := flag.Duration("scale-interval", 0, "scale-evaluation period (0: 1s)")
	timeout := flag.Duration("timeout", 0, "per-job timeout (0: none)")
	compact := flag.Bool("compact", false, "emit the report without indentation")
	cache := flag.Bool("cache", false, "consult the fleet-wide result cache before evaluating each job (hits replay with worker -1)")
	cachePeers := flag.String("cache-peers", "", "comma-separated art9-serve base URLs whose /v1/cache tier answers local misses and receives local fills")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "local result-cache bound in bytes (0: 64 MiB)")
	cacheEpoch := flag.Uint64("cache-epoch", 0, "cache invalidation generation: exchanges with peers on another epoch are standing misses (default: ART9_CACHE_EPOCH, else 0)")
	flag.Parse()

	peerURLs := remote.SplitPeerList(*peers)
	standbyURLs := remote.SplitPeerList(*standbyPeers)
	cachePeerURLs := remote.SplitPeerList(*cachePeers)
	applyCacheEpochEnv(cacheEpoch, *cache)
	warn, err := validateFleetFlags(remote.BackendConfig{
		Shards:             *shards,
		Peers:              peerURLs,
		Failover:           *failover,
		HealthInterval:     *healthInterval,
		MaxRetries:         *maxRetries,
		Chunk:              *chunk,
		AutoscaleMin:       *autoscaleMin,
		AutoscaleMax:       *autoscaleMax,
		StandbyPeers:       standbyURLs,
		ScaleUpThreshold:   *scaleUp,
		ScaleDownThreshold: *scaleDown,
		ScaleCooldown:      *scaleCooldown,
		ScaleInterval:      *scaleInterval,
		Cache:              *cache,
		CacheMaxBytes:      *cacheMaxBytes,
		CachePeers:         cachePeerURLs,
		CacheEpoch:         *cacheEpoch,
	})
	if err != nil {
		fatal(err)
	}
	if warn != "" {
		fmt.Fprintln(os.Stderr, "art9-batch: warning:", warn)
	}

	m, err := bench.LoadManifest(*manifest)
	if err != nil {
		fatal(err)
	}
	techs, err := m.ResolveTechnologies()
	if err != nil {
		fatal(err)
	}
	jobs, err := m.EngineJobs(filepath.Dir(*manifest), xlate.Options{})
	if err != nil {
		fatal(err)
	}
	// Stamp the flag onto each job (manifest timeout_ms wins): a job's
	// own Timeout rides the wire spec, so the bound holds on remote
	// peers too — the engine option below only covers local shards.
	bench.ApplyJobTimeout(jobs, *timeout)

	opts := []art9.Option{
		art9.WithWorkers(*workers),
		art9.WithJobTimeout(*timeout),
		art9.WithPeers(peerURLs...),
	}
	if *shards > 0 {
		opts = append(opts, art9.WithShards(*shards))
	}
	if *failover {
		opts = append(opts, art9.WithFailover(), art9.WithChunk(*chunk),
			art9.WithHealthInterval(*healthInterval), art9.WithMaxRetries(*maxRetries))
	}
	if *autoscaleMin != 0 || *autoscaleMax != 0 {
		opts = append(opts, art9.WithAutoscale(*autoscaleMin, *autoscaleMax),
			art9.WithStandbyPeers(standbyURLs...),
			art9.WithScaleThresholds(*scaleUp, *scaleDown),
			art9.WithScaleCooldown(*scaleCooldown),
			art9.WithScaleInterval(*scaleInterval))
	}
	if *cache {
		opts = append(opts, art9.WithResultCache(),
			art9.WithCachePeers(cachePeerURLs...),
			art9.WithCacheMaxBytes(*cacheMaxBytes),
			art9.WithCacheEpoch(*cacheEpoch))
	}
	ev, err := art9.New(opts...)
	if err != nil {
		fatal(err)
	}
	defer func() {
		// The run is complete by the time this fires; a close failure
		// means a backend could not shut down cleanly (a wedged peer,
		// an unreachable standby) and deserves a visible warning even
		// though the report has already been written.
		if cerr := ev.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "art9-batch: close:", cerr)
		}
	}()

	start := time.Now()
	results, _ := ev.Run(context.Background(), jobs)
	wall := time.Since(start)

	rep := bench.Report{
		Schema:  "art9-batch/v1",
		Created: time.Now().UTC().Format(time.RFC3339),
		WallMS:  float64(wall.Microseconds()) / 1e3,
		Peers:   len(peerURLs),
	}
	for _, r := range results {
		jr := bench.JobReportOf(r, techs)
		if !jr.OK {
			rep.Failures++
		}
		rep.Jobs = append(rep.Jobs, jr)
	}
	rep.Cache = bench.SharedCacheReport()
	// With -cache, surface the result-cache counters: a warm fleet shows
	// nonzero hits here and rows that never rode a worker (worker -1).
	rep.Cache.Results = bench.ResultCacheReportFor(ev)
	// Per-run counters only: a long-lived peer's lifetime totals would
	// say nothing about this batch. Workers therefore counts local
	// pools; remote capacity is the peers field.
	rep.Engine = bench.RunReportFor(ev)
	rep.Workers = rep.Engine.Workers
	// With -failover, record the fleet behaviour: which backends
	// carried the work and how many jobs had to be re-run elsewhere.
	rep.Balancer = bench.BalancerReportFor(ev)

	if err := emit(*out, rep, !*compact); err != nil {
		fatal(err)
	}
	if rep.Failures > 0 {
		fatal(fmt.Errorf("%d of %d jobs failed", rep.Failures, len(rep.Jobs)))
	}
}

func emit(dest string, rep bench.Report, indent bool) error {
	var raw []byte
	var err error
	if indent {
		raw, err = json.MarshalIndent(rep, "", "  ")
	} else {
		raw, err = json.Marshal(rep)
	}
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if dest == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(dest, raw, 0o644)
}

// applyCacheEpochEnv fills the -cache-epoch value from ART9_CACHE_EPOCH
// when the flag was not set explicitly. The env var is the fleet-wide
// invalidation lever — export it once and restart every member — so an
// explicit flag always wins over it, and it is ignored entirely while
// -cache is off so a site-wide export cannot trip the orphaned-flag
// rule on cache-less runs. A malformed value is ignored rather than
// fatal: the epoch degrades to 0, never blocks the batch.
func applyCacheEpochEnv(epoch *uint64, cacheOn bool) {
	set := false
	flag.Visit(func(f *flag.Flag) { set = set || f.Name == "cache-epoch" })
	if set || !cacheOn {
		return
	}
	v := os.Getenv("ART9_CACHE_EPOCH")
	if v == "" {
		return
	}
	if n, err := strconv.ParseUint(v, 10, 64); err == nil {
		*epoch = n
	}
}

// validateFleetFlags applies the shared fleet rules
// (remote.ValidateFleetFlags — the same set art9.New enforces as
// ErrInvalidOptions) to this CLI's flag values: tuning flags without
// their front error out, topologies with nothing to move jobs between
// warn.
func validateFleetFlags(cfg remote.BackendConfig) (warning string, err error) {
	return remote.ValidateFleetFlags(cfg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "art9-batch:", err)
	os.Exit(1)
}
