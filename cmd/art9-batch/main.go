// Command art9-batch runs a manifest of benchmark programs concurrently
// through the evaluation engine and emits a JSON report — the format CI
// archives as BENCH_*.json to track the performance trajectory.
//
// Usage:
//
//	art9-batch                                   # example manifest, stdout
//	art9-batch -manifest suite.json -o out.json  # explicit in/out
//	art9-batch -workers 4 -timeout 30s           # pool size, per-job cap
//
// A manifest names jobs drawn from the built-in suite, inline RV32
// sources, or assembly files, plus the technologies to evaluate each
// job's cycle counts against:
//
//	{
//	  "technologies": ["cntfet32", "stratixv"],
//	  "jobs": [
//	    {"name": "bubble", "workload": "bubble"},
//	    {"name": "mine", "file": "prog.s", "iterations": 10}
//	  ]
//	}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/gate"
	"repro/internal/xlate"
)

// Manifest is the batch input.
type Manifest struct {
	// Technologies lists design-technology models to evaluate each
	// job against: "cntfet32" and/or "stratixv".
	Technologies []string      `json:"technologies"`
	Jobs         []ManifestJob `json:"jobs"`
}

// ManifestJob names one program: exactly one of Workload (a built-in
// suite name), Source (inline RV32 assembly), or File (a path to RV32
// assembly, relative to the manifest) must be set.
type ManifestJob struct {
	Name       string `json:"name"`
	Workload   string `json:"workload,omitempty"`
	Source     string `json:"source,omitempty"`
	File       string `json:"file,omitempty"`
	Iterations int    `json:"iterations,omitempty"`
}

// Report is the batch output, one BENCH_*.json per run.
type Report struct {
	Schema   string      `json:"schema"`
	Created  string      `json:"created"`
	Workers  int         `json:"workers"`
	WallMS   float64     `json:"wall_ms"`
	Jobs     []JobReport `json:"jobs"`
	Cache    CacheReport `json:"cache"`
	Failures int         `json:"failures"`
}

// JobReport carries one job's result. Metrics is present exactly when
// OK is true, with every field always emitted — a checksum of 0 stays
// distinguishable from "job failed" for consumers diffing reports.
type JobReport struct {
	Name      string  `json:"name"`
	OK        bool    `json:"ok"`
	Error     string  `json:"error,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Worker    int     `json:"worker"`

	Metrics         *MetricsReport `json:"metrics,omitempty"`
	Implementations []ImplReport   `json:"implementations,omitempty"`
}

// MetricsReport mirrors bench.Outcome for one successful job.
type MetricsReport struct {
	Checksum   int    `json:"checksum"`
	RVInsts    int    `json:"rv_insts"`
	RVBits     int    `json:"rv_bits"`
	ARTInsts   int    `json:"art_insts"`
	ARTTrits   int    `json:"art_trits"`
	ART9Cycles uint64 `json:"art9_cycles"`
	VexCycles  uint64 `json:"vex_cycles"`
	PicoCycles uint64 `json:"pico_cycles"`
	Removed    int    `json:"redundancy_removed"`
}

// ImplReport is one (job, technology) implementation estimate, at the
// operating point of the paper's Table IV (native) / Table V (FPGA).
type ImplReport struct {
	Tech      string  `json:"tech"`
	Gates     int     `json:"gates,omitempty"`
	ALMs      int     `json:"alms,omitempty"`
	Registers int     `json:"registers,omitempty"`
	RAMBits   int     `json:"ram_bits,omitempty"`
	FreqMHz   float64 `json:"freq_mhz"`
	PowerW    float64 `json:"power_w"`
	DMIPS     float64 `json:"dmips"`
	DMIPSPerW float64 `json:"dmips_per_w"`
}

// CacheReport snapshots the engine's memoization counters.
type CacheReport struct {
	ProgramHits    uint64 `json:"program_hits"`
	ProgramMisses  uint64 `json:"program_misses"`
	AnalysisHits   uint64 `json:"analysis_hits"`
	AnalysisMisses uint64 `json:"analysis_misses"`
}

func main() {
	manifest := flag.String("manifest", "examples/batch/manifest.json", "batch manifest (JSON)")
	out := flag.String("o", "-", "report destination (- for stdout)")
	workers := flag.Int("workers", 0, "worker-pool size (0: GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-job timeout (0: none)")
	compact := flag.Bool("compact", false, "emit the report without indentation")
	flag.Parse()

	m, err := loadManifest(*manifest)
	if err != nil {
		fatal(err)
	}
	techs, err := resolveTechnologies(m.Technologies)
	if err != nil {
		fatal(err)
	}

	eng := engine.New(engine.Options{Workers: *workers, JobTimeout: *timeout})
	defer eng.Close()

	jobs := make([]engine.Job, len(m.Jobs))
	for i, mj := range m.Jobs {
		w, err := resolveWorkload(mj, filepath.Dir(*manifest))
		if err != nil {
			fatal(err)
		}
		jobs[i] = engine.Job{
			ID: w.Name,
			Fn: func(ctx context.Context) (any, error) {
				return bench.RunCtx(ctx, w, xlate.Options{})
			},
		}
	}

	start := time.Now()
	results, _ := eng.RunAll(context.Background(), jobs)
	wall := time.Since(start)

	rep := Report{
		Schema:  "art9-batch/v1",
		Created: time.Now().UTC().Format(time.RFC3339),
		Workers: eng.Workers(),
		WallMS:  float64(wall.Microseconds()) / 1e3,
	}
	for _, r := range results {
		jr := JobReport{
			Name:      r.ID,
			OK:        r.Err == nil,
			ElapsedMS: float64(r.Elapsed.Microseconds()) / 1e3,
			Worker:    r.Worker,
		}
		if r.Err != nil {
			jr.Error = r.Err.Error()
			rep.Failures++
		} else {
			o := r.Value.(*bench.Outcome)
			jr.Metrics = &MetricsReport{
				Checksum:   o.Checksum,
				RVInsts:    o.RVInsts,
				RVBits:     o.RVBits,
				ARTInsts:   o.ARTInsts,
				ARTTrits:   o.ARTTrits,
				ART9Cycles: o.ART9Cycles,
				VexCycles:  o.VexCycles,
				PicoCycles: o.PicoCycles,
				Removed:    o.Removed,
			}
			jr.Implementations = estimates(o, techs)
		}
		rep.Jobs = append(rep.Jobs, jr)
	}
	ps, as := eng.Programs.Stats(), eng.Analyses.Stats()
	rep.Cache = CacheReport{
		ProgramHits: ps.Hits, ProgramMisses: ps.Misses,
		AnalysisHits: as.Hits, AnalysisMisses: as.Misses,
	}

	if err := emit(*out, rep, !*compact); err != nil {
		fatal(err)
	}
	if rep.Failures > 0 {
		fatal(fmt.Errorf("%d of %d jobs failed", rep.Failures, len(rep.Jobs)))
	}
}

func loadManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	if len(m.Jobs) == 0 {
		return nil, fmt.Errorf("manifest %s: no jobs", path)
	}
	return &m, nil
}

func resolveWorkload(mj ManifestJob, dir string) (bench.Workload, error) {
	set := 0
	for _, s := range []string{mj.Workload, mj.Source, mj.File} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return bench.Workload{}, fmt.Errorf("job %q: exactly one of workload, source, file required", mj.Name)
	}
	iters := mj.Iterations
	if iters < 1 {
		iters = 1
	}
	switch {
	case mj.Workload != "":
		w, ok := bench.ByName(mj.Workload)
		if !ok {
			return bench.Workload{}, fmt.Errorf("job %q: unknown workload %q", mj.Name, mj.Workload)
		}
		if mj.Name != "" {
			w.Name = mj.Name
		}
		if mj.Iterations > 0 {
			w.Iterations = mj.Iterations
		}
		return w, nil
	case mj.Source != "":
		return bench.Workload{Name: mj.Name, Description: "manifest inline source",
			Source: mj.Source, Iterations: iters}, nil
	default:
		path := mj.File
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return bench.Workload{}, fmt.Errorf("job %q: %w", mj.Name, err)
		}
		return bench.Workload{Name: mj.Name, Description: "manifest file " + mj.File,
			Source: string(src), Iterations: iters}, nil
	}
}

func resolveTechnologies(names []string) ([]*gate.Technology, error) {
	var techs []*gate.Technology
	for _, n := range names {
		switch n {
		case "cntfet32":
			techs = append(techs, gate.CNTFET32())
		case "stratixv":
			techs = append(techs, gate.StratixVEmulation())
		default:
			return nil, fmt.Errorf("unknown technology %q (want cntfet32 or stratixv)", n)
		}
	}
	return techs, nil
}

// estimates evaluates one outcome against every requested technology at
// the same operating point the paper's tables use (bench.ImplFor), so
// the archived report rows are comparable to Tables IV/V. The analysis
// itself comes from the engine's shared cache, so only the first job
// per technology pays for it.
func estimates(o *bench.Outcome, techs []*gate.Technology) []ImplReport {
	var irs []ImplReport
	for _, tech := range techs {
		impl := bench.ImplFor(o, tech)
		irs = append(irs, ImplReport{
			Tech:      impl.Tech,
			Gates:     impl.Gates,
			ALMs:      impl.ALMs,
			Registers: impl.Registers,
			RAMBits:   impl.RAMBits,
			FreqMHz:   impl.FreqMHz,
			PowerW:    impl.PowerW,
			DMIPS:     impl.DMIPS,
			DMIPSPerW: impl.DMIPSPerW,
		})
	}
	return irs
}

func emit(dest string, rep Report, indent bool) error {
	var raw []byte
	var err error
	if indent {
		raw, err = json.MarshalIndent(rep, "", "  ")
	} else {
		raw, err = json.Marshal(rep)
	}
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if dest == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(dest, raw, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "art9-batch:", err)
	os.Exit(1)
}
