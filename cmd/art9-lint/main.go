// Command art9-lint runs the repo's domain-specific static-analysis
// suite (internal/lint): compiler-grade enforcement of the Evaluator
// stack's conventions that ordinary vet and staticcheck cannot know
// about.
//
// Usage:
//
//	art9-lint [-list] [packages]        standalone multichecker
//	go vet -vettool=$(which art9-lint)  as a vet tool
//
// Standalone mode loads the packages (default ./...) with `go list`
// plus source type-checking and prints one line per finding; the exit
// status is 0 when clean, 1 on findings, 2 on a driver error. As a vet
// tool it speaks cmd/go's unitchecker protocol (-V=full handshake,
// single *.cfg argument, compiled export data), which also covers test
// files.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("art9-lint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	version := fs.String("V", "", "version handshake for cmd/go (-V=full)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: art9-lint [-list] [packages]")
		fmt.Fprintln(os.Stderr, "       go vet -vettool=/path/to/art9-lint ./...")
		fs.PrintDefaults()
	}
	// cmd/go probes vet tools with `-flags` for a JSON description of
	// the flags they accept; the suite is deliberately knob-free.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version != "" {
		// cmd/go identifies and caches vet tools through this exact
		// shape: "<name> version <identity>". Derive the identity from
		// the analyzer set so changing the suite invalidates vet's
		// cache.
		h := sha256.New()
		for _, a := range lint.All() {
			fmt.Fprintf(h, "%s\n%s\n", a.Name, a.Doc)
		}
		fmt.Printf("art9-lint version devel buildID=%x\n", h.Sum(nil)[:16])
		return 0
	}
	if *list {
		for _, a := range lint.All() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return 0
	}
	if fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg") {
		return vettool(fs.Arg(0))
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return standalone(patterns)
}

// finding pairs a diagnostic with its analyzer for sorted rendering.
type finding struct {
	pos      token.Position
	analyzer string
	message  string
}

func render(fset *token.FileSet, an *analysis.Analyzer, ds []analysis.Diagnostic) []finding {
	out := make([]finding, 0, len(ds))
	for _, d := range ds {
		out = append(out, finding{pos: fset.Position(d.Pos), analyzer: an.Name, message: d.Message})
	}
	return out
}

func sortFindings(fs []finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.analyzer < b.analyzer
	})
}

// standalone loads patterns from the working directory and runs every
// analyzer over every matched package.
func standalone(patterns []string) int {
	r := load.NewResolver()
	pkgs, err := r.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "art9-lint:", err)
		return 2
	}
	var all []finding
	for _, pkg := range pkgs {
		if pkg.Standard || pkg.Types == nil {
			continue
		}
		for _, an := range lint.All() {
			var ds []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  an,
				Fset:      r.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d analysis.Diagnostic) { ds = append(ds, d) },
			}
			if _, err := an.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "art9-lint: %s: %s: %v\n", an.Name, pkg.PkgPath, err)
				return 2
			}
			all = append(all, render(r.Fset, an, ds)...)
		}
	}
	sortFindings(all)
	for _, f := range all {
		fmt.Printf("%s: %s: %s\n", f.pos, f.analyzer, f.message)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "art9-lint: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}

// vetConfig is the unitchecker protocol's per-package configuration,
// written by cmd/go next to the compiled package.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vettool runs one unitchecker round: cmd/go hands a cfg describing a
// single (possibly test-augmented) package with compiled export data
// for its imports.
func vettool(cfgFile string) int {
	raw, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "art9-lint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "art9-lint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// The suite carries no cross-package facts, but cmd/go requires the
	// facts file to exist before it will cache the run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("art9-lint: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "art9-lint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "art9-lint:", err)
			return 2
		}
		files = append(files, f)
	}
	// Imports resolve through the compiler's export data, exactly as
	// x/tools' unitchecker does: cfg.ImportMap maps source paths to
	// canonical package paths, cfg.PackageFile maps those to files.
	compilerImporter := load.GCImporter(fset, cfg.PackageFile)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	info := load.NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "art9-lint:", err)
		return 2
	}

	var all []finding
	for _, an := range lint.All() {
		var ds []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  an,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { ds = append(ds, d) },
		}
		if _, err := an.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "art9-lint: %s: %v\n", an.Name, err)
			return 2
		}
		all = append(all, render(fset, an, ds)...)
	}
	sortFindings(all)
	for _, f := range all {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.pos, f.analyzer, f.message)
	}
	if len(all) > 0 {
		return 2 // vet convention: findings are a non-zero exit
	}
	return 0
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
