package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs f with os.Stdout redirected to a pipe and returns what
// it wrote.
func capture(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestVetProtocolProbes covers the two handshakes cmd/go performs
// before trusting a vettool: the -flags flag enumeration and the
// -V=full identity line.
func TestVetProtocolProbes(t *testing.T) {
	out := capture(t, func() {
		if got := run([]string{"-flags"}); got != 0 {
			t.Errorf("run(-flags) = %d, want 0", got)
		}
	})
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("run(-flags) printed %q, want []", out)
	}

	out = capture(t, func() {
		if got := run([]string{"-V=full"}); got != 0 {
			t.Errorf("run(-V=full) = %d, want 0", got)
		}
	})
	if !strings.HasPrefix(out, "art9-lint version ") {
		t.Errorf("run(-V=full) printed %q, want art9-lint version ...", out)
	}
}

// TestList checks the analyzer listing names the whole suite.
func TestList(t *testing.T) {
	out := capture(t, func() {
		if got := run([]string{"-list"}); got != 0 {
			t.Errorf("run(-list) = %d, want 0", got)
		}
	})
	for _, name := range []string{"closecheck", "ctxflow", "tritrange", "typederr", "wirespec"} {
		if !strings.Contains(out, name) {
			t.Errorf("run(-list) output missing %s:\n%s", name, out)
		}
	}
}

// TestStandaloneSelf runs the standalone driver over this package —
// an end-to-end load/typecheck/analyze pass that must come back clean.
func TestStandaloneSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("standalone run type-checks the dependency closure from source")
	}
	out := capture(t, func() {
		if got := run([]string{"./."}); got != 0 {
			t.Errorf("run(./.) = %d, want 0 (clean)", got)
		}
	})
	if strings.TrimSpace(out) != "" {
		t.Errorf("run(./.) reported findings:\n%s", out)
	}
}
