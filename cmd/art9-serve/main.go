// Command art9-serve runs the streaming evaluation service: the same
// workloads art9-batch evaluates from a manifest file, served resident
// over HTTP with warm caches and persistent worker pools.
//
// Usage:
//
//	art9-serve                                  # :9009, 1 shard, GOMAXPROCS workers
//	art9-serve -addr :8080 -shards 4 -workers 2 # 4 engines × 2 workers
//	art9-serve -job-timeout 30s                 # cap each evaluation job
//	art9-serve -peers http://h1:9009,http://h2:9009
//	                                            # front a fleet: fan jobs out to
//	                                            # downstream art9-serve instances
//	                                            # (-shards 0 for proxy-only)
//	art9-serve -failover -peers ...             # health-aware fleet front:
//	                                            # peers are probed, jobs go to
//	                                            # the least-loaded live backend,
//	                                            # and a dying peer's jobs are
//	                                            # re-run on the survivors
//	art9-serve -failover -chunk 32 -peers ...   # chunked dispatch: up to 32
//	                                            # jobs per peer ride one
//	                                            # acknowledged suite stream,
//	                                            # sized by scraped capacity
//	art9-serve -autoscale-min 1 -autoscale-max 4
//	                                            # elastic pool: local shards
//	                                            # float between the bounds;
//	                                            # /v1/stats carries the scale
//	                                            # state and event log
//	art9-serve -autoscale-max 2 -standby-peers http://h1:9009
//	                                            # standby peers dialed only
//	                                            # once the local ceiling is
//	                                            # exhausted
//	art9-serve -cache -cache-peers http://h1:9009
//	                                            # fleet-wide result cache:
//	                                            # jobs already evaluated here
//	                                            # or on a cache peer replay
//	                                            # instead of running, and the
//	                                            # /v1/cache endpoints answer
//	                                            # sibling lookups/fills
//
// Endpoints:
//
//	GET  /v1/healthz  liveness + pool shape
//	GET  /v1/stats    engine + cache counters
//	GET  /v1/capacity process-local free workers + queue depth
//	POST /v1/eval     one job (workload or inline source) → one report
//	POST /v1/suite    manifest → NDJSON report lines in completion order
//	                  (?ack=1: start/end acknowledgement rows for chunked
//	                  failover dispatch)
//	POST /v1/cache/lookup  result-cache keys → NDJSON hit/miss rows
//	                  (with -cache; absent otherwise)
//	POST /v1/cache/fill    sibling-computed rows → stored count
//	                  (with -cache; absent otherwise)
//
// Shutdown: SIGINT/SIGTERM stops accepting connections, drains in-flight
// requests (bounded by -shutdown-timeout) — each NDJSON stream runs to
// its last job — then closes the engines, which resolves anything still
// queued with an engine-closed error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/remote"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":9009", "listen address")
	shards := flag.Int("shards", 1, "local engine shards (0 with -peers: proxy-only)")
	workers := flag.Int("workers", 0, "worker-pool size per shard (0: GOMAXPROCS)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-evaluation-job timeout (0: none)")
	readTimeout := flag.Duration("read-timeout", 10*time.Second, "HTTP read-header timeout")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "graceful-shutdown drain budget")
	peers := flag.String("peers", "", "comma-separated base URLs of downstream art9-serve instances to fan jobs out to")
	failover := flag.Bool("failover", false, "health-aware dispatch with job-level failover across the backends")
	healthInterval := flag.Duration("health-interval", 0, "failover health-probe period (0: 2s; negative: probes off)")
	maxRetries := flag.Int("max-retries", 0, "failover budget per job (0: 2; negative: no retries)")
	chunk := flag.Int("chunk", 0, "failover chunk size: dispatch up to N jobs per backend as one acknowledged suite stream (0: per-job)")
	autoscaleMin := flag.Int("autoscale-min", 0, "elastic pool floor: minimum local shards (0 with -autoscale-max: 1)")
	autoscaleMax := flag.Int("autoscale-max", 0, "elastic pool ceiling: maximum local shards (0: autoscaling off)")
	standbyPeers := flag.String("standby-peers", "", "comma-separated downstream art9-serve base URLs dialed only when the elastic pool's local ceiling is exhausted")
	scaleUp := flag.Float64("scale-up", 0, "utilization at which the elastic pool grows (0: 0.8)")
	scaleDown := flag.Float64("scale-down", 0, "utilization below which the elastic pool shrinks (0: 0.25)")
	scaleCooldown := flag.Duration("scale-cooldown", 0, "minimum gap between scale events (0: 2s; negative: none)")
	scaleInterval := flag.Duration("scale-interval", 0, "scale-evaluation period (0: 1s)")
	cache := flag.Bool("cache", false, "enable the fleet-wide result cache and the /v1/cache endpoints")
	cachePeers := flag.String("cache-peers", "", "comma-separated sibling art9-serve base URLs whose /v1/cache tier answers local misses and receives local fills")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "local result-cache bound in bytes (0: 64 MiB)")
	cacheEpoch := flag.Uint64("cache-epoch", 0, "cache invalidation generation: exchanges with peers on another epoch are standing misses (default: ART9_CACHE_EPOCH, else 0)")
	flag.Parse()

	peerURLs := remote.SplitPeerList(*peers)
	standbyURLs := remote.SplitPeerList(*standbyPeers)
	cachePeerURLs := remote.SplitPeerList(*cachePeers)
	applyCacheEpochEnv(cacheEpoch, *cache)
	if *autoscaleMin != 0 || *autoscaleMax != 0 {
		// The -shards default of 1 only describes the fixed topologies;
		// an elastic pool owns its shard count, so the untouched default
		// must not trip the -shards/-autoscale conflict rule.
		set := false
		flag.Visit(func(f *flag.Flag) { set = set || f.Name == "shards" })
		if !set {
			*shards = 0
		}
	}
	warn, err := validateFleetFlags(remote.BackendConfig{
		Shards:             *shards,
		Peers:              peerURLs,
		Failover:           *failover,
		HealthInterval:     *healthInterval,
		MaxRetries:         *maxRetries,
		Chunk:              *chunk,
		AutoscaleMin:       *autoscaleMin,
		AutoscaleMax:       *autoscaleMax,
		StandbyPeers:       standbyURLs,
		ScaleUpThreshold:   *scaleUp,
		ScaleDownThreshold: *scaleDown,
		ScaleCooldown:      *scaleCooldown,
		ScaleInterval:      *scaleInterval,
		Cache:              *cache,
		CacheMaxBytes:      *cacheMaxBytes,
		CachePeers:         cachePeerURLs,
		CacheEpoch:         *cacheEpoch,
	})
	if err != nil {
		fatal(err)
	}
	if warn != "" {
		fmt.Fprintln(os.Stderr, "art9-serve: warning:", warn)
	}
	srv, err := serve.New(serve.Config{
		Shards:             *shards,
		Workers:            *workers,
		JobTimeout:         *jobTimeout,
		Peers:              peerURLs,
		Failover:           *failover,
		HealthInterval:     *healthInterval,
		MaxRetries:         *maxRetries,
		Chunk:              *chunk,
		AutoscaleMin:       *autoscaleMin,
		AutoscaleMax:       *autoscaleMax,
		StandbyPeers:       standbyURLs,
		ScaleUpThreshold:   *scaleUp,
		ScaleDownThreshold: *scaleDown,
		ScaleCooldown:      *scaleCooldown,
		ScaleInterval:      *scaleInterval,
		Cache:              *cache,
		CacheMaxBytes:      *cacheMaxBytes,
		CachePeers:         cachePeerURLs,
		CacheEpoch:         *cacheEpoch,
	})
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readTimeout,
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "art9-serve: listening on %s (%d local shard(s), %d peer(s))\n",
		*addr, *shards, len(peerURLs))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err) // listener died before any signal
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "art9-serve: draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "art9-serve: shutdown:", err)
	}
	srv.Close() // handlers are done submitting; drain the engines
	fmt.Fprintln(os.Stderr, "art9-serve: stopped")
}

// applyCacheEpochEnv fills the -cache-epoch value from ART9_CACHE_EPOCH
// when the flag was not set explicitly. The env var is the fleet-wide
// invalidation lever — export it once and restart every member — so an
// explicit flag always wins over it, and it is ignored entirely while
// -cache is off so a site-wide export cannot trip the orphaned-flag
// rule on cache-less instances. A malformed value is ignored rather
// than fatal: the epoch degrades to 0, never blocks startup.
func applyCacheEpochEnv(epoch *uint64, cacheOn bool) {
	set := false
	flag.Visit(func(f *flag.Flag) { set = set || f.Name == "cache-epoch" })
	if set || !cacheOn {
		return
	}
	v := os.Getenv("ART9_CACHE_EPOCH")
	if v == "" {
		return
	}
	if n, err := strconv.ParseUint(v, 10, 64); err == nil {
		*epoch = n
	}
}

// validateFleetFlags applies the shared fleet rules
// (remote.ValidateFleetFlags — the same set art9.New enforces as
// ErrInvalidOptions) to this CLI's flag values — the -shards default of
// 1 rides in on the config; tuning flags without their front error out,
// topologies with nothing to move jobs between warn.
func validateFleetFlags(cfg remote.BackendConfig) (warning string, err error) {
	return remote.ValidateFleetFlags(cfg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "art9-serve:", err)
	os.Exit(1)
}
