package main

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/remote"
)

// fakePeers renders n placeholder peer URLs — validation only counts
// them, so the hosts never resolve.
func fakePeers(n int) []string {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = "http://peer.invalid:9009"
	}
	return urls
}

// TestValidateFleetFlags pins the server's flag-validation contract,
// which differs from art9-batch only in its -shards default (1): the
// balancer tuning flags require -failover, autoscale tuning requires
// -autoscale-min/-autoscale-max, a single-backend failover topology
// warns, and multi-backend fleets pass clean. Hard errors wrap
// engine.ErrInvalidOptions — the same typed error art9.New returns.
func TestValidateFleetFlags(t *testing.T) {
	tests := []struct {
		name     string
		cfg      remote.BackendConfig
		wantErr  string
		wantWarn string
	}{
		{name: "default server is clean", cfg: remote.BackendConfig{Shards: 1}},
		{name: "chunk without failover", cfg: remote.BackendConfig{Shards: 1, Chunk: 4}, wantErr: "-chunk"},
		{name: "max-retries without failover", cfg: remote.BackendConfig{Shards: 1, MaxRetries: 1},
			wantErr: "-max-retries"},
		{name: "health-interval without failover",
			cfg:     remote.BackendConfig{Shards: 1, HealthInterval: 5 * time.Second},
			wantErr: "-health-interval"},
		{name: "negative chunk rejected",
			cfg:     remote.BackendConfig{Failover: true, Chunk: -3, Peers: fakePeers(2)},
			wantErr: "-chunk must be >= 0"},
		{name: "failover on the default single shard",
			cfg: remote.BackendConfig{Failover: true, Shards: 1}, wantWarn: "single backend"},
		{name: "failover proxy-only front", cfg: remote.BackendConfig{Failover: true, Peers: fakePeers(2)}},
		{name: "failover mixed fleet", cfg: remote.BackendConfig{Failover: true, Shards: 1, Peers: fakePeers(1)}},
		{name: "chunked failover fleet",
			cfg: remote.BackendConfig{Failover: true, Chunk: 8, Peers: fakePeers(2)}},
		{name: "elastic server pool", cfg: remote.BackendConfig{AutoscaleMin: 1, AutoscaleMax: 4}},
		{name: "autoscale with the fixed shard flag",
			cfg:     remote.BackendConfig{Shards: 2, AutoscaleMax: 4},
			wantErr: "-shards"},
		{name: "standby peers without autoscale",
			cfg:     remote.BackendConfig{Shards: 1, StandbyPeers: fakePeers(1)},
			wantErr: "-standby-peers"},
		{name: "autoscale bounds inverted",
			cfg:     remote.BackendConfig{AutoscaleMin: 3, AutoscaleMax: 1},
			wantErr: "bounds inverted"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			warn, err := validateFleetFlags(tt.cfg)
			if tt.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tt.wantErr)
				}
				if !errors.Is(err, engine.ErrInvalidOptions) {
					t.Fatalf("err = %v, want wrapping engine.ErrInvalidOptions", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if tt.wantWarn == "" && warn != "" {
				t.Fatalf("unexpected warning %q", warn)
			}
			if tt.wantWarn != "" && !strings.Contains(warn, tt.wantWarn) {
				t.Fatalf("warning %q, want containing %q", warn, tt.wantWarn)
			}
		})
	}
}
