package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateFleetFlags pins the server's flag-validation contract,
// which differs from art9-batch only in its -shards default (1): the
// balancer tuning flags require -failover, a single-backend failover
// topology warns, and multi-backend fleets pass clean.
func TestValidateFleetFlags(t *testing.T) {
	tests := []struct {
		name           string
		failover       bool
		chunk          int
		maxRetries     int
		healthInterval time.Duration
		shards, peers  int
		wantErr        string
		wantWarn       string
	}{
		{name: "default server is clean", shards: 1},
		{name: "chunk without failover", shards: 1, chunk: 4, wantErr: "-chunk"},
		{name: "max-retries without failover", shards: 1, maxRetries: 1, wantErr: "-max-retries"},
		{name: "health-interval without failover", shards: 1, healthInterval: 5 * time.Second,
			wantErr: "-health-interval"},
		{name: "negative chunk rejected", failover: true, chunk: -3, peers: 2, wantErr: "-chunk must be >= 0"},
		{name: "failover on the default single shard", failover: true, shards: 1, wantWarn: "single backend"},
		{name: "failover proxy-only front", failover: true, shards: 0, peers: 2},
		{name: "failover mixed fleet", failover: true, shards: 1, peers: 1},
		{name: "chunked failover fleet", failover: true, chunk: 8, shards: 0, peers: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			warn, err := validateFleetFlags(tt.failover, tt.chunk, tt.maxRetries, tt.healthInterval, tt.shards, tt.peers)
			if tt.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if tt.wantWarn == "" && warn != "" {
				t.Fatalf("unexpected warning %q", warn)
			}
			if tt.wantWarn != "" && !strings.Contains(warn, tt.wantWarn) {
				t.Fatalf("warning %q, want containing %q", warn, tt.wantWarn)
			}
		})
	}
}
