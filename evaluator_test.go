// Facade tests for the unified Evaluator surface: the functional-options
// constructor, the typed errors, and the optional machine sizing of
// Run/RunFunctional.
package art9_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	art9 "repro"
	"repro/internal/serve"
)

func runSuiteOn(t *testing.T, ev art9.Evaluator) map[string]art9.EngineResult {
	t.Helper()
	results, err := ev.Run(context.Background(), art9.SuiteJobs())
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]art9.EngineResult{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.ID, r.Err)
		}
		byID[r.ID] = r
	}
	return byID
}

func TestNewDefaultIsLocalPool(t *testing.T) {
	ev, err := art9.New()
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	if _, ok := ev.(*art9.Engine); !ok {
		t.Fatalf("New() built %T, want a single local *Engine", ev)
	}
	got := runSuiteOn(t, ev)
	if len(got) != len(art9.Benchmarks()) {
		t.Fatalf("suite resolved %d jobs, want %d", len(got), len(art9.Benchmarks()))
	}
	if st := ev.Stats(); st.Completed != uint64(len(got)) {
		t.Errorf("stats %+v, want %d completed", st, len(got))
	}
}

func TestNewWithShards(t *testing.T) {
	ev, err := art9.New(art9.WithShards(2), art9.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	set, ok := ev.(*art9.ShardSet)
	if !ok {
		t.Fatalf("New(WithShards(2)) built %T, want *ShardSet", ev)
	}
	if set.Shards() != 2 {
		t.Fatalf("shard count %d, want 2", set.Shards())
	}
	runSuiteOn(t, ev)
	if st := ev.Stats(); st.Workers != 2 {
		t.Errorf("stats %+v, want 2 workers across the set", st)
	}
}

func TestNewWithPeers(t *testing.T) {
	peer, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(peer.Handler())
	defer func() {
		ts.Close()
		peer.Close()
	}()

	// Remote-only: no explicit shards, so every job crosses the wire.
	ev, err := art9.New(art9.WithPeers(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	serial, err := art9.RunBenchmark(art9.Benchmarks()[0])
	if err != nil {
		t.Fatal(err)
	}
	got := runSuiteOn(t, ev)
	row := got[serial.Workload.Name]
	jr, ok := row.Value.(*art9.JobReport)
	if !ok {
		t.Fatalf("remote result value %T, want *JobReport", row.Value)
	}
	if jr.Metrics == nil || jr.Metrics.Checksum != serial.Checksum {
		t.Errorf("remote metrics %+v disagree with local checksum %d", jr.Metrics, serial.Checksum)
	}
	if st := peer.Backend().Stats(); st.Completed < uint64(len(got)) {
		t.Errorf("peer completed %d jobs, want at least %d (remote-only fan-out)", st.Completed, len(got))
	}

	// Mixed: one local shard + the peer behind one ShardSet.
	mixed, err := art9.New(art9.WithShards(1), art9.WithWorkers(1), art9.WithPeers(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer mixed.Close()
	if set, ok := mixed.(*art9.ShardSet); !ok || set.Shards() != 2 {
		t.Fatalf("mixed evaluator %T, want a 2-shard set", mixed)
	}
	runSuiteOn(t, mixed)

	if _, err := art9.New(art9.WithPeers("ftp://nope")); err == nil {
		t.Error("New accepted an invalid peer URL")
	}
}

func TestTypedErrors(t *testing.T) {
	ev, err := art9.New(art9.WithWorkers(1), art9.WithJobTimeout(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	r := <-ev.(*art9.Engine).Submit(context.Background(), art9.EngineJob{ID: "slow",
		Fn: func(ctx context.Context) (any, error) { <-ctx.Done(); return nil, ctx.Err() }})
	if !errors.Is(r.Err, art9.ErrTimeout) {
		t.Errorf("timeout error %v, want art9.ErrTimeout", r.Err)
	}
	ev.Close()
	results, _ := ev.Run(context.Background(), art9.SuiteJobs()[:1])
	if !errors.Is(results[0].Err, art9.ErrClosed) {
		t.Errorf("post-Close error %v, want art9.ErrClosed", results[0].Err)
	}
}

func TestRunAcceptsSimConfig(t *testing.T) {
	prog, err := art9.Assemble("LDI T1, 42\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	// Default sizing still works and is the no-argument path.
	if _, _, err := art9.Run(prog, nil); err != nil {
		t.Fatal(err)
	}
	// An explicit machine sizing is honoured: a 1-word instruction
	// memory cannot hold the 2-word program.
	if _, _, err := art9.Run(prog, nil, art9.SimConfig{TIMWords: 1}); err == nil {
		t.Error("Run ignored the caller's SimConfig (1-word TIM fit a 2-word program)")
	}
	if _, _, err := art9.RunFunctional(prog, nil, art9.SimConfig{TIMWords: 1}); err == nil {
		t.Error("RunFunctional ignored the caller's SimConfig")
	}
	// A generous explicit sizing behaves like the default.
	s, res, err := art9.Run(prog, nil, art9.SimConfig{TIMWords: 64, TDMWords: 64, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Reg(1).Int() != 42 || res.Cycles == 0 {
		t.Errorf("sized run: T1=%d cycles=%d, want 42 and non-zero", s.Reg(1).Int(), res.Cycles)
	}
}

// TestRunRejectsMultipleSimConfigs pins the variadic contract: the
// optional SimConfig is at most one — extras used to be silently
// discarded, hiding caller bugs where two configs disagreed.
func TestRunRejectsMultipleSimConfigs(t *testing.T) {
	prog, err := art9.Assemble("LDI T1, 42\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	a := art9.SimConfig{TIMWords: 64, TDMWords: 64}
	b := art9.SimConfig{TIMWords: 128}
	if _, _, err := art9.Run(prog, nil, a, b); err == nil {
		t.Error("Run silently accepted two SimConfigs")
	}
	if _, _, err := art9.RunFunctional(prog, nil, a, b); err == nil {
		t.Error("RunFunctional silently accepted two SimConfigs")
	}
}
