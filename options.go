package art9

import (
	"time"

	"repro/internal/engine"
	"repro/internal/remote"
)

// Option configures the Evaluator built by New.
type Option func(*evalConfig)

type evalConfig struct {
	workers        int
	shards         int
	queue          int
	jobTimeout     time.Duration
	peers          []string
	failover       bool
	healthInterval time.Duration
	maxRetries     int
	chunk          int
}

// WithWorkers sets the pool size of each local shard (0 selects
// GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *evalConfig) { c.workers = n } }

// WithShards sets the number of local engine shards. Left at zero, one
// local shard is used — unless peers are configured, where zero means
// remote-only; WithShards(n > 0) adds local shards alongside the peers.
func WithShards(n int) Option {
	return func(c *evalConfig) { c.shards = n }
}

// WithQueue sets each local shard's buffered dispatch-queue depth
// (0 selects 2× the workers).
func WithQueue(n int) Option { return func(c *evalConfig) { c.queue = n } }

// WithJobTimeout bounds each local evaluation job; jobs that exceed it
// fail with ErrTimeout.
func WithJobTimeout(d time.Duration) Option { return func(c *evalConfig) { c.jobTimeout = d } }

// WithPeers adds one remote backend per art9-serve base URL (e.g.
// "http://host:9009"). Jobs fanned to a peer must carry a serializable
// spec — SuiteJobs and the manifest loader attach one; bare closure
// jobs fail on remote shards with a not-remotable error.
func WithPeers(urls ...string) Option {
	return func(c *evalConfig) { c.peers = append(c.peers, urls...) }
}

// WithFailover fronts the backends with a health-aware Balancer instead
// of the round-robin ShardSet: each job goes to the least-loaded healthy
// backend (liveness from local state and remote /v1/healthz probes), and
// jobs dropped by a dying backend — engine-closed results, severed
// streams, unreachable peers — are re-run on another backend within a
// bounded retry budget, so a suite completes as long as any backend
// survives. Tune with WithHealthInterval and WithMaxRetries.
func WithFailover() Option { return func(c *evalConfig) { c.failover = true } }

// WithHealthInterval sets the failover Balancer's health-probe period
// (0 selects 2s; negative disables the background loop). Only
// meaningful with WithFailover.
func WithHealthInterval(d time.Duration) Option {
	return func(c *evalConfig) { c.healthInterval = d }
}

// WithMaxRetries bounds how many times one job is re-dispatched after a
// backend-level failure (0 selects 2; negative disables failover
// retries). Only meaningful with WithFailover.
func WithMaxRetries(n int) Option { return func(c *evalConfig) { c.maxRetries = n } }

// WithChunk makes the failover Balancer dispatch in chunks of up to n
// jobs instead of placing each job individually: a chunk reaches a
// remote backend as one acknowledged /v1/suite NDJSON stream (per-row
// acknowledgement, so a severed chunk re-dispatches only its unresolved
// jobs on the survivors), and chunk sizes follow the backend's free
// slots and scraped live capacity. 0 keeps per-job placement. Only
// meaningful with WithFailover.
func WithChunk(n int) Option { return func(c *evalConfig) { c.chunk = n } }

// New builds an Evaluator from functional options — the one constructor
// behind which every backend topology lives:
//
//	art9.New()                                     // one local pool
//	art9.New(art9.WithWorkers(8))                  // sized local pool
//	art9.New(art9.WithShards(4))                   // 4 local shards
//	art9.New(art9.WithPeers("http://h1:9009"))     // remote-only
//	art9.New(art9.WithShards(2),                   // mixed: 2 local shards
//	         art9.WithPeers("http://h1:9009"))     //  + 1 remote peer
//	art9.New(art9.WithFailover(),                  // health-aware fleet with
//	         art9.WithPeers("http://h1:9009",      //  least-loaded dispatch
//	                        "http://h2:9009"))     //  and job failover
//
// Multiple backends compose behind a ShardSet that partitions batches
// round-robin and merges completion-order streams. Close the returned
// Evaluator when done; closing a composite closes every backend. New
// fails only on an invalid peer URL.
func New(opts ...Option) (Evaluator, error) {
	var cfg evalConfig
	for _, o := range opts {
		o(&cfg)
	}
	// remote.NewBackendWith owns the composition rules (shard
	// defaulting, shared vs private caches, ShardSet or Balancer
	// wrapping) so this constructor and serve.New cannot drift.
	return remote.NewBackendWith(remote.BackendConfig{
		Shards: cfg.shards,
		Engine: engine.Options{
			Workers:    cfg.workers,
			Queue:      cfg.queue,
			JobTimeout: cfg.jobTimeout,
		},
		Peers:          cfg.peers,
		Failover:       cfg.failover,
		HealthInterval: cfg.healthInterval,
		MaxRetries:     cfg.maxRetries,
		Chunk:          cfg.chunk,
	})
}
