package art9

import (
	"time"

	"repro/internal/engine"
	"repro/internal/remote"
)

// Option configures the Evaluator built by New.
type Option func(*evalConfig)

type evalConfig struct {
	workers    int
	shards     int
	queue      int
	jobTimeout time.Duration
	peers      []string
}

// WithWorkers sets the pool size of each local shard (0 selects
// GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *evalConfig) { c.workers = n } }

// WithShards sets the number of local engine shards. Left at zero, one
// local shard is used — unless peers are configured, where zero means
// remote-only; WithShards(n > 0) adds local shards alongside the peers.
func WithShards(n int) Option {
	return func(c *evalConfig) { c.shards = n }
}

// WithQueue sets each local shard's buffered dispatch-queue depth
// (0 selects 2× the workers).
func WithQueue(n int) Option { return func(c *evalConfig) { c.queue = n } }

// WithJobTimeout bounds each local evaluation job; jobs that exceed it
// fail with ErrTimeout.
func WithJobTimeout(d time.Duration) Option { return func(c *evalConfig) { c.jobTimeout = d } }

// WithPeers adds one remote backend per art9-serve base URL (e.g.
// "http://host:9009"). Jobs fanned to a peer must carry a serializable
// spec — SuiteJobs and the manifest loader attach one; bare closure
// jobs fail on remote shards with a not-remotable error.
func WithPeers(urls ...string) Option {
	return func(c *evalConfig) { c.peers = append(c.peers, urls...) }
}

// New builds an Evaluator from functional options — the one constructor
// behind which every backend topology lives:
//
//	art9.New()                                     // one local pool
//	art9.New(art9.WithWorkers(8))                  // sized local pool
//	art9.New(art9.WithShards(4))                   // 4 local shards
//	art9.New(art9.WithPeers("http://h1:9009"))     // remote-only
//	art9.New(art9.WithShards(2),                   // mixed: 2 local shards
//	         art9.WithPeers("http://h1:9009"))     //  + 1 remote peer
//
// Multiple backends compose behind a ShardSet that partitions batches
// round-robin and merges completion-order streams. Close the returned
// Evaluator when done; closing a composite closes every backend. New
// fails only on an invalid peer URL.
func New(opts ...Option) (Evaluator, error) {
	var cfg evalConfig
	for _, o := range opts {
		o(&cfg)
	}
	// remote.NewBackend owns the composition rules (shard defaulting,
	// shared vs private caches, ShardSet wrapping) so this constructor
	// and serve.New cannot drift.
	return remote.NewBackend(cfg.shards, engine.Options{
		Workers:    cfg.workers,
		Queue:      cfg.queue,
		JobTimeout: cfg.jobTimeout,
	}, cfg.peers)
}
