package art9

import (
	"time"

	"repro/internal/engine"
	"repro/internal/remote"
)

// Option configures the Evaluator built by New.
type Option func(*evalConfig)

type evalConfig struct {
	workers        int
	shards         int
	queue          int
	jobTimeout     time.Duration
	peers          []string
	failover       bool
	healthInterval time.Duration
	maxRetries     int
	chunk          int
	autoscaleMin   int
	autoscaleMax   int
	standbyPeers   []string
	scaleUp        float64
	scaleDown      float64
	scaleCooldown  time.Duration
	scaleInterval  time.Duration
	cache          bool
	cacheMaxBytes  int64
	cachePeers     []string
	cacheEpoch     uint64
}

// WithWorkers sets the pool size of each local shard (0 selects
// GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *evalConfig) { c.workers = n } }

// WithShards sets the number of local engine shards. Left at zero, one
// local shard is used — unless peers are configured, where zero means
// remote-only; WithShards(n > 0) adds local shards alongside the peers.
func WithShards(n int) Option {
	return func(c *evalConfig) { c.shards = n }
}

// WithQueue sets each local shard's buffered dispatch-queue depth
// (0 selects 2× the workers).
func WithQueue(n int) Option { return func(c *evalConfig) { c.queue = n } }

// WithJobTimeout bounds each local evaluation job; jobs that exceed it
// fail with ErrTimeout.
func WithJobTimeout(d time.Duration) Option { return func(c *evalConfig) { c.jobTimeout = d } }

// WithPeers adds one remote backend per art9-serve base URL (e.g.
// "http://host:9009"). Jobs fanned to a peer must carry a serializable
// spec — SuiteJobs and the manifest loader attach one; bare closure
// jobs fail on remote shards with a not-remotable error.
func WithPeers(urls ...string) Option {
	return func(c *evalConfig) { c.peers = append(c.peers, urls...) }
}

// WithFailover fronts the backends with a health-aware Balancer instead
// of the round-robin ShardSet: each job goes to the least-loaded healthy
// backend (liveness from local state and remote /v1/healthz probes), and
// jobs dropped by a dying backend — engine-closed results, severed
// streams, unreachable peers — are re-run on another backend within a
// bounded retry budget, so a suite completes as long as any backend
// survives. Tune with WithHealthInterval and WithMaxRetries.
func WithFailover() Option { return func(c *evalConfig) { c.failover = true } }

// WithHealthInterval sets the failover Balancer's health-probe period
// (0 selects 2s; negative disables the background loop). Only
// meaningful with WithFailover.
func WithHealthInterval(d time.Duration) Option {
	return func(c *evalConfig) { c.healthInterval = d }
}

// WithMaxRetries bounds how many times one job is re-dispatched after a
// backend-level failure (0 selects 2; negative disables failover
// retries). Only meaningful with WithFailover.
func WithMaxRetries(n int) Option { return func(c *evalConfig) { c.maxRetries = n } }

// WithChunk makes the failover Balancer dispatch in chunks of up to n
// jobs instead of placing each job individually: a chunk reaches a
// remote backend as one acknowledged /v1/suite NDJSON stream (per-row
// acknowledgement, so a severed chunk re-dispatches only its unresolved
// jobs on the survivors), and chunk sizes follow the backend's free
// slots and scraped live capacity. 0 keeps per-job placement. Only
// meaningful with WithFailover.
func WithChunk(n int) Option { return func(c *evalConfig) { c.chunk = n } }

// WithAutoscale selects the elastic Autoscaler front: the local shard
// count floats between min and max (min 0 selects 1), growing when
// jobs queue beyond the active capacity and shrinking — each retired
// shard drained before it is closed, so no in-flight job is lost —
// when utilization falls. Tune the hysteresis with WithScaleThresholds,
// WithScaleCooldown and WithScaleInterval; recruit remote capacity
// beyond max with WithStandbyPeers. Incompatible with WithShards,
// WithPeers and WithFailover: the autoscaler owns its topology.
func WithAutoscale(min, max int) Option {
	return func(c *evalConfig) { c.autoscaleMin, c.autoscaleMax = min, max }
}

// WithStandbyPeers lists art9-serve base URLs the autoscaler dials only
// when the local bound is exhausted and retires first when load drops —
// reserve capacity, not a fixed fleet (that is WithPeers). Only
// meaningful with WithAutoscale.
func WithStandbyPeers(urls ...string) Option {
	return func(c *evalConfig) { c.standbyPeers = append(c.standbyPeers, urls...) }
}

// WithScaleThresholds sets the autoscaler's hysteresis bounds on pool
// utilization: the pool grows at or above up (0 selects 0.8; queued
// jobs grow it regardless) and shrinks below down (0 selects 0.25).
// down must stay below up — hysteresis needs the gap. Only meaningful
// with WithAutoscale.
func WithScaleThresholds(up, down float64) Option {
	return func(c *evalConfig) { c.scaleUp, c.scaleDown = up, down }
}

// WithScaleCooldown sets the minimum gap between consecutive scale
// events (0 selects 2s; negative disables the gap). Only meaningful
// with WithAutoscale.
func WithScaleCooldown(d time.Duration) Option {
	return func(c *evalConfig) { c.scaleCooldown = d }
}

// WithScaleInterval sets the period of the autoscaler's background
// evaluation loop (0 selects 1s; negative disables it — scaling then
// only happens through Autoscaler.ScaleNow). Only meaningful with
// WithAutoscale.
func WithScaleInterval(d time.Duration) Option {
	return func(c *evalConfig) { c.scaleInterval = d }
}

// WithResultCache enables the fleet-wide result cache: before placing
// a job, the dispatch front consults a content-addressed store keyed by
// the job's spec (program source, iterations, technologies), and a hit
// short-circuits evaluation entirely — the replayed result reports
// Worker -1. Only spec-carrying jobs participate (SuiteJobs and the
// manifest loader attach specs; File jobs and bare closures always
// compute), and failed jobs are never cached. Bound the store with
// WithCacheMaxBytes; share it across a fleet with WithCachePeers.
func WithResultCache() Option { return func(c *evalConfig) { c.cache = true } }

// WithCacheMaxBytes bounds the local result-cache store (0 selects the
// default, 64 MiB); cold entries age out LRU-first. Only meaningful
// with WithResultCache.
func WithCacheMaxBytes(n int64) Option { return func(c *evalConfig) { c.cacheMaxBytes = n } }

// WithCachePeers lists art9-serve base URLs whose /v1/cache tier is
// consulted on a local miss and filled when a job computes here, so hot
// jobs are evaluated once per fleet instead of once per process. A dead
// or cache-less peer degrades to a miss, never a failure. Only
// meaningful with WithResultCache.
func WithCachePeers(urls ...string) Option {
	return func(c *evalConfig) { c.cachePeers = append(c.cachePeers, urls...) }
}

// WithCacheEpoch sets the fleet-wide cache invalidation generation.
// The cache key already covers everything that determines a result —
// program content, iterations, the technology model's fingerprint —
// so the epoch exists for what keys cannot express: operator-driven
// invalidation ("abandon everything cached before today") and fencing
// off fleet members whose build differs in ways the key does not
// capture. Every /v1/cache exchange carries the epoch; a disagreement
// is a standing miss (lookup) or a rejected fill, never an error, so
// a mixed-epoch fleet degrades to computing instead of replaying
// another generation's rows. Only meaningful with WithResultCache.
func WithCacheEpoch(epoch uint64) Option {
	return func(c *evalConfig) { c.cacheEpoch = epoch }
}

// New builds an Evaluator from functional options — the one constructor
// behind which every backend topology lives:
//
//	art9.New()                                     // one local pool
//	art9.New(art9.WithWorkers(8))                  // sized local pool
//	art9.New(art9.WithShards(4))                   // 4 local shards
//	art9.New(art9.WithPeers("http://h1:9009"))     // remote-only
//	art9.New(art9.WithShards(2),                   // mixed: 2 local shards
//	         art9.WithPeers("http://h1:9009"))     //  + 1 remote peer
//	art9.New(art9.WithFailover(),                  // health-aware fleet with
//	         art9.WithPeers("http://h1:9009",      //  least-loaded dispatch
//	                        "http://h2:9009"))     //  and job failover
//	art9.New(art9.WithAutoscale(1, 4),             // elastic pool: 1–4 local
//	         art9.WithStandbyPeers(                //  shards, standby peers
//	                "http://h1:9009"))             //  recruited under burst
//
// Multiple backends compose behind a ShardSet that partitions batches
// round-robin and merges completion-order streams. Close the returned
// Evaluator when done; closing a composite closes every backend.
//
// New fails on an invalid peer URL and on incoherent option
// combinations — failover tuning (WithChunk, WithMaxRetries,
// WithHealthInterval) without WithFailover, autoscale tuning or standby
// peers without WithAutoscale, inverted autoscale bounds or thresholds,
// WithAutoscale mixed with a fixed topology, cache tuning
// (WithCachePeers, WithCacheMaxBytes, WithCacheEpoch) without
// WithResultCache — with an error wrapping the typed ErrInvalidOptions. The CLIs vet their flags
// through the same rule set, so the diagnostics match.
func New(opts ...Option) (Evaluator, error) {
	var cfg evalConfig
	for _, o := range opts {
		o(&cfg)
	}
	// remote.NewBackendWith owns the validation and composition rules
	// (shard defaulting, shared vs private caches, ShardSet, Balancer
	// or Autoscaler wrapping) so this constructor and serve.New cannot
	// drift.
	return remote.NewBackendWith(remote.BackendConfig{
		Shards: cfg.shards,
		Engine: engine.Options{
			Workers:    cfg.workers,
			Queue:      cfg.queue,
			JobTimeout: cfg.jobTimeout,
		},
		Peers:              cfg.peers,
		Failover:           cfg.failover,
		HealthInterval:     cfg.healthInterval,
		MaxRetries:         cfg.maxRetries,
		Chunk:              cfg.chunk,
		AutoscaleMin:       cfg.autoscaleMin,
		AutoscaleMax:       cfg.autoscaleMax,
		StandbyPeers:       cfg.standbyPeers,
		ScaleUpThreshold:   cfg.scaleUp,
		ScaleDownThreshold: cfg.scaleDown,
		ScaleCooldown:      cfg.scaleCooldown,
		ScaleInterval:      cfg.scaleInterval,
		Cache:              cfg.cache,
		CacheMaxBytes:      cfg.cacheMaxBytes,
		CachePeers:         cfg.cachePeers,
		CacheEpoch:         cfg.cacheEpoch,
	})
}
