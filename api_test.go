// Integration tests of the public facade: everything a downstream user
// touches, exercised end to end.
package art9_test

import (
	"strings"
	"testing"

	art9 "repro"
)

func TestFacadeAssembleRun(t *testing.T) {
	prog, err := art9.Assemble(`
		LDI T1, 100
		LDI T2, -58
		ADD T1, T2
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	state, res, err := art9.Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := state.Reg(1).Int(); got != 42 {
		t.Errorf("T1 = %d, want 42", got)
	}
	if res.Cycles == 0 || res.Retired == 0 {
		t.Error("no statistics collected")
	}
}

func TestFacadeFunctionalMatchesPipeline(t *testing.T) {
	prog, err := art9.Assemble(`
		LDI T1, 1
		LDI T2, 0
	loop:	ADD T2, T1
		ADDI T1, 1
		MV T3, T1
		COMP T3, T2
		BEQ T3, -1, done
		JAL T0, loop
	done:	HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	s1, _, err := art9.Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := art9.RunFunctional(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.TRF != s2.TRF {
		t.Errorf("cores disagree: %v vs %v", s1.TRF, s2.TRF)
	}
}

func TestFacadeWords(t *testing.T) {
	w := art9.FromInt(-42)
	if w.Int() != -42 {
		t.Error("FromInt round trip failed")
	}
	p, err := art9.ParseWord("1T0")
	if err != nil || p.Int() != 6 {
		t.Errorf("ParseWord(1T0) = %d, %v", p.Int(), err)
	}
	if art9.MaxInt != 9841 || art9.MinInt != -9841 || art9.WordTrits != 9 {
		t.Error("word-range constants wrong")
	}
}

func TestFacadeEncodeDecode(t *testing.T) {
	in := art9.Inst{Op: 7 /* ADD */, Ta: 1, Tb: 2}
	w, err := art9.EncodeInst(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := art9.DecodeInst(w)
	if err != nil || out != in {
		t.Errorf("round trip: %v -> %v", in, out)
	}
}

func TestFacadeDisassemble(t *testing.T) {
	prog, err := art9.Assemble("ADD T1, T2\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	dis := art9.Disassemble(prog.Words)
	if !strings.Contains(dis, "ADD T1, T2") {
		t.Errorf("disassembly missing instruction:\n%s", dis)
	}
}

func TestFacadeCompile(t *testing.T) {
	res, err := art9.Compile(`
		li   a0, 21
		add  a0, a0, a0
		ebreak
	`)
	if err != nil {
		t.Fatal(err)
	}
	state, _, err := art9.Run(res.Program, res.Data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Ternary.ReadBack(state, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("compiled result = %d, want 42", got)
	}
}

func TestFacadeTechnologies(t *testing.T) {
	for _, tech := range []*art9.Technology{art9.CNTFET32(), art9.StratixVEmulation()} {
		an := art9.BuildNetlist(tech)
		if an.Gates == 0 || an.FmaxMHz <= 0 {
			t.Errorf("%s: degenerate analysis", tech.Name)
		}
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	ws := art9.Benchmarks()
	if len(ws) != 4 {
		t.Fatalf("suite has %d workloads, want 4", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		names[w.Name] = true
	}
	for _, want := range []string{"bubble", "gemm", "sobel", "dhrystone"} {
		if !names[want] {
			t.Errorf("missing workload %s", want)
		}
	}
	// Run the cheapest one through the public entry point.
	o, err := art9.RunBenchmark(ws[0])
	if err != nil {
		t.Fatal(err)
	}
	if o.ART9Cycles == 0 {
		t.Error("no cycles measured")
	}
}

func TestFacadeReproduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	s, err := art9.ReproduceTables()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 5", "Table II", "Table III", "Table IV", "Table V", "DMIPS"} {
		if !strings.Contains(s, want) {
			t.Errorf("tables output missing %q", want)
		}
	}
}
